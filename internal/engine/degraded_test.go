package engine

import (
	"errors"
	"testing"

	"demaq/internal/gateway"
	"demaq/internal/store"
)

// TestDegradedModeOnPermanentDiskFailure kills the device under a running
// engine: the failing ingest surfaces an error (no panic), the engine
// flips into degraded read-only mode, further ingest is refused with an
// error transports shed as 503, stats report the condition, and committed
// messages stay readable.
func TestDegradedModeOnPermanentDiskFailure(t *testing.T) {
	fs := store.NewFaultFS(11)
	e := newEngine(t, pingPongApp, func(cfg *Config) {
		cfg.Dir = "degraded" // FaultFS-backed: never touches the real FS
		cfg.Store.Store = store.Options{
			VFS:         fs,
			SyncCommits: true,
		}
	})
	id, err := e.EnqueueXML("in", `<ping>before</ping>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, e)

	fs.FailWritesAfter(fs.Ops() + 1)
	// The first failing ingest reports the disk error and trips the mode.
	if _, err := e.EnqueueXML("in", `<ping>during</ping>`, nil); err == nil {
		t.Fatal("enqueue on a dead disk should fail")
	} else if !store.IsPermanent(err) {
		t.Fatalf("want a permanent storage error, got: %v", err)
	}
	if !e.Degraded() {
		t.Fatal("engine should be degraded after a permanent write failure")
	}
	// Subsequent ingest is shed before touching storage, with the error
	// the HTTP gateway maps to 503 + Retry-After.
	_, err = e.EnqueueXML("in", `<ping>after</ping>`, nil)
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, gateway.ErrUnavailable) {
		t.Fatalf("want ErrDegraded wrapping gateway.ErrUnavailable, got: %v", err)
	}
	if _, err := e.CollectGarbage(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("GC in degraded mode: %v", err)
	}

	st := e.Stats()
	if !st.Degraded || st.StorageError == "" {
		t.Fatalf("stats do not report degradation: %+v", st)
	}
	if e.StorageError() == nil {
		t.Fatal("StorageError should carry the tripping failure")
	}

	// Reads keep serving: the pre-failure message is intact.
	doc, err := e.MessageStore().Doc(id)
	if err != nil {
		t.Fatalf("read in degraded mode: %v", err)
	}
	if doc.StringValue() != "before" {
		t.Fatalf("read wrong payload: %q", doc.StringValue())
	}
	msgs, err := e.MessageStore().Messages("out")
	if err != nil || len(msgs) != 1 {
		t.Fatalf("out queue unreadable in degraded mode: %v, %d msgs", err, len(msgs))
	}
}
