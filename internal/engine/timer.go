package engine

import (
	"container/heap"
	"fmt"
	"strconv"
	"sync"
	"time"

	"demaq/internal/msgstore"
	"demaq/internal/property"
	"demaq/internal/xdm"
)

// timerService implements echo queues (paper Sec. 2.1.3): a message placed
// into an echo queue is re-enqueued into its target queue after its timeout
// expires. Timeout and target are message properties ("timeout" in
// milliseconds, "target" a queue name). Echo queues are persistent like any
// other queue, so pending timers survive restarts: on startup the engine
// re-schedules every unprocessed echo message, firing immediately when the
// deadline already passed.
type timerService struct {
	eng     *Engine
	mu      sync.Mutex
	pq      timerHeap
	kick    chan struct{}
	stop    chan struct{}
	started bool
}

type timerEntry struct {
	at    time.Time
	queue string
	id    msgstore.MsgID
}

type timerHeap []timerEntry

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newTimerService(e *Engine) *timerService {
	return &timerService{
		eng:  e,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
}

// schedule registers an unprocessed echo-queue message.
func (t *timerService) schedule(queue string, id msgstore.MsgID) {
	msg, ok := t.eng.ms.Get(id)
	if !ok {
		return
	}
	timeout := time.Duration(0)
	if v, ok := msg.Props["timeout"]; ok {
		if ms, err := strconv.ParseInt(v.StringValue(), 10, 64); err == nil {
			timeout = time.Duration(ms) * time.Millisecond
		}
	}
	at := msg.Enqueued.Add(timeout)
	t.mu.Lock()
	heap.Push(&t.pq, timerEntry{at: at, queue: queue, id: id})
	t.mu.Unlock()
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

func (t *timerService) start() {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return
	}
	t.started = true
	t.mu.Unlock()
	t.eng.wg.Add(1)
	go t.loop()
}

func (t *timerService) shutdown() {
	t.mu.Lock()
	started := t.started
	t.started = false
	t.mu.Unlock()
	if started {
		close(t.stop)
	}
}

func (t *timerService) loop() {
	defer t.eng.wg.Done()
	for {
		t.mu.Lock()
		var wait time.Duration = time.Hour
		var due *timerEntry
		if t.pq.Len() > 0 {
			now := time.Now()
			if !t.pq[0].at.After(now) {
				e := heap.Pop(&t.pq).(timerEntry)
				due = &e
			} else {
				wait = t.pq[0].at.Sub(now)
			}
		}
		t.mu.Unlock()
		if due != nil {
			if err := t.fire(due.queue, due.id); err != nil {
				t.eng.log.Error("echo timer failed", "queue", due.queue, "id", due.id, "err", err)
			}
			continue
		}
		timer := time.NewTimer(wait)
		select {
		case <-t.stop:
			timer.Stop()
			return
		case <-t.kick:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// fire moves the payload of an expired echo message into its target queue
// and consumes the echo message, in one transaction.
func (t *timerService) fire(queue string, id msgstore.MsgID) error {
	e := t.eng
	msg, ok := e.ms.Get(id)
	if !ok || msg.Processed {
		return nil
	}
	target := ""
	if v, ok := msg.Props["target"]; ok {
		target = v.StringValue()
	}
	if target == "" {
		e.emitError(queue, id, nil, nil, fmt.Errorf("echo message %d has no target property", id))
		return t.consume(id)
	}
	tq, ok := e.ms.Queue(target)
	if !ok {
		e.emitError(queue, id, nil, nil, fmt.Errorf("echo target queue %q does not exist", target))
		return t.consume(id)
	}
	doc, err := e.ms.Doc(id)
	if err != nil {
		return err
	}
	now := time.Now().UTC()
	system := map[string]xdm.Value{
		property.SysCreatingRule: xdm.NewString("echo:" + queue),
		property.SysCreated:      xdm.NewDateTime(now),
	}
	props, err := e.prog.Properties.Evaluate(target, doc, nil, msg.Props, system, now)
	if err != nil {
		return err
	}
	tx := e.ms.Begin()
	nid, err := tx.Enqueue(target, doc, props, now)
	if err != nil {
		tx.Abort()
		return err
	}
	if err := tx.MarkProcessed(id); err != nil {
		tx.Abort()
		return err
	}
	if _, err := tx.Commit(); err != nil {
		return err
	}
	e.slices.OnEnqueue(nid, target, props)
	e.stats.enqueued.Add(1)
	e.routeNewMessage(tq, nid)
	return nil
}

func (t *timerService) consume(id msgstore.MsgID) error {
	tx := t.eng.ms.Begin()
	tx.MarkProcessed(id)
	_, err := tx.Commit()
	return err
}
