package engine

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"testing"
	"testing/fstest"
	"time"

	"demaq/internal/gateway"
	"demaq/internal/msgstore"
	"demaq/internal/qdl"
	"demaq/internal/store"
)

// The end-to-end torture harness: a reliable client sends a numbered job
// stream into a Demaq node over a deterministic fault-injecting network
// (FaultNet); the node's rule forwards each job through an outgoing
// gateway to a remote reliable receiver. The node's entire storage stack
// runs on a FaultFS, so both every disk operation and every network
// operation is an enumerable crash site. The sweep re-runs the workload
// once per site, crashes the whole node exactly there, restarts it
// (reopen + recovery + resubscribe), and asserts end-to-end exactly-once:
// the receiver observes every job exactly once, in send order, the error
// queue stays empty, and the recovered store passes VerifyIntegrity.
//
// What makes the assertion hold at every site:
//   - the client's ack is sent only after the enqueue and the receive
//     dedup window committed in one transaction (a crash between them
//     cannot make the ack a lie in either direction);
//   - the outgoing sender uses the durable message ID as its sequence
//     number, so a post-restart retransmit reuses the pre-crash number
//     and the receiver's window suppresses it;
//   - the sender-side queue keeps a transfer unprocessed until acked, so
//     no transfer is lost to a crash.

const e2eNodeApp = `
create queue in kind incomingGateway mode persistent
  interface node.wsdl port InPort
  using WS-ReliableMessaging policy rm.xml;
create queue out kind outgoingGateway mode persistent
  interface recv.wsdl port RecvPort
  using WS-ReliableMessaging policy rm.xml
  errorqueue errs;
create queue errs kind basic mode persistent;
create rule fwd for in errorqueue errs
  if (//job) then do enqueue <done>{//job/n/text()}</done> into out;
`

var e2eFiles = fstest.MapFS{
	"node.wsdl": &fstest.MapFile{Data: []byte(`
		<definitions><service name="Node">
		  <port name="InPort"><address location="fnet://node/in"/></port>
		</service></definitions>`)},
	"recv.wsdl": &fstest.MapFile{Data: []byte(`
		<definitions><service name="Recv">
		  <port name="RecvPort"><address location="fnet://recv/inbox"/></port>
		</service></definitions>`)},
	"rm.xml": &fstest.MapFile{Data: []byte(`<policy/>`)},
}

const e2eJobs = 12

func e2eConfig(fs *store.FaultFS, fn *gateway.FaultNet) Config {
	cfg := Config{
		Dir:        "e2e", // virtual: all I/O goes through the FaultFS
		Workers:    1,
		Store:      tortureStoreOptions(fs),
		Resources:  e2eFiles,
		Transports: gateway.NewRegistry(fn),
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	return cfg
}

// e2eRun drives one complete workload: N serially-acked client sends
// through the node to the receiver, restarting the node whenever its
// FaultFS crashes. arm configures the crash site (or nothing, for the
// fault-free enumeration pass) before traffic starts.
type e2eRun struct {
	t  *testing.T
	fs *store.FaultFS
	fn *gateway.FaultNet

	mu  sync.Mutex
	eng *Engine

	recvMu sync.Mutex
	got    []string
}

func newE2ERun(t *testing.T, fsSeed, netSeed int64) *e2eRun {
	t.Helper()
	r := &e2eRun{t: t, fs: store.NewFaultFS(fsSeed), fn: gateway.NewFaultNet(netSeed)}
	return r
}

func (r *e2eRun) engine() *Engine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eng
}

func (r *e2eRun) openNode() {
	r.t.Helper()
	app, err := qdl.Parse(e2eNodeApp)
	if err != nil {
		r.t.Fatal(err)
	}
	for {
		e, err := New(e2eConfig(r.fs, r.fn), app)
		if err == nil {
			e.Start()
			r.mu.Lock()
			r.eng = e
			r.mu.Unlock()
			return
		}
		if r.fs.Crashed() {
			// The armed site fired during boot (queue creation, recovery):
			// the node crashes and boots again.
			r.fs.ClearFault()
			continue
		}
		r.t.Fatalf("node open: %v", err)
	}
}

// restartNode is the whole-node crash-restart: stop (the dead store makes
// in-flight work fail, not block), clear the fault, reopen with recovery,
// resubscribe the gateways.
func (r *e2eRun) restartNode() {
	r.t.Helper()
	r.engine().Stop() // close on a crashed FS reports the crash; recovery fixes it
	r.fs.ClearFault()
	r.openNode()
}

// run executes the workload to completion and returns the receiver's
// observed payload sequence. The monitor goroutine performs the restart
// whenever the armed site fires.
func (r *e2eRun) run() []string {
	t := r.t
	t.Helper()

	// Remote receiver: a reliable endpoint that records every admitted
	// payload (its own dedup window suppresses the node's retransmits).
	recvRel, err := gateway.NewReliable(r.fn, "fnet://recv/inbox", 2*time.Millisecond, 100000)
	if err != nil {
		t.Fatal(err)
	}
	defer recvRel.Close()
	err = recvRel.Subscribe(func(payload []byte, _ map[string]string) error {
		r.recvMu.Lock()
		r.got = append(r.got, string(payload))
		r.recvMu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	r.openNode()

	// Crash monitor: whenever the node's storage crashes (armed disk site
	// or net-op hook), restart the whole node.
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stopMon:
				return
			case <-time.After(time.Millisecond):
				if r.fs.Crashed() {
					r.restartNode()
				}
			}
		}
	}()

	// Client: serially-acked reliable sends; the generous retry budget
	// rides out node downtime (unsubscribed endpoints swallow transfers).
	clientRel, err := gateway.NewReliable(r.fn, "fnet://client/acks", 2*time.Millisecond, 100000)
	if err != nil {
		t.Fatal(err)
	}
	defer clientRel.Close()
	if err := clientRel.Subscribe(func([]byte, map[string]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= e2eJobs; i++ {
		done := make(chan error, 1)
		clientRel.SendAsync("fnet://node/in",
			[]byte(fmt.Sprintf("<job><n>%d</n></job>", i)), nil,
			func(err error) { done <- err })
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("job %d never acknowledged: %v", i, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("job %d ack timed out", i)
		}
	}

	// All jobs admitted; wait for the pipeline to deliver every one.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		r.recvMu.Lock()
		n := len(r.got)
		r.recvMu.Unlock()
		if n >= e2eJobs {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stopMon)
	monWG.Wait()

	// Final phase: the armed crash can still fire here (a late WAL flush, a
	// drain-time write, the closing checkpoint). Each pass restarts once
	// more and re-verifies; an armed site fires at most once, so this
	// terminates quickly.
	for attempt := 0; ; attempt++ {
		if attempt > 5 {
			t.Fatal("node kept crashing in the final phase")
		}
		if r.fs.Crashed() {
			r.restartNode()
		}
		eng := r.engine()
		eng.Drain(30 * time.Second)
		if r.fs.Crashed() {
			continue
		}
		// End-state invariants on the surviving node.
		if err := eng.MessageStore().VerifyIntegrity(); err != nil {
			if r.fs.Crashed() {
				continue
			}
			t.Fatalf("integrity after recovery: %v", err)
		}
		if docs, _ := eng.MessageStore().QueueDocs("errs"); len(docs) != 0 {
			t.Fatalf("error queue not empty: %d messages, first: %s", len(docs), docs[0].StringValue())
		}
		msgs, err := eng.MessageStore().Messages("in")
		if err != nil {
			if r.fs.Crashed() {
				continue
			}
			t.Fatal(err)
		}
		if len(msgs) != e2eJobs {
			t.Fatalf("node admitted %d jobs, want %d (lost or duplicated at the incoming gateway)", len(msgs), e2eJobs)
		}
		if err := eng.Stop(); err != nil {
			if r.fs.Crashed() {
				continue
			}
			t.Fatalf("final stop: %v", err)
		}
		break
	}
	r.fn.Close()

	r.recvMu.Lock()
	defer r.recvMu.Unlock()
	return append([]string(nil), r.got...)
}

// checkExactlyOnce asserts the receiver saw jobs 1..N exactly once, in
// send order.
func checkExactlyOnce(t *testing.T, got []string, site string) {
	t.Helper()
	if len(got) != e2eJobs {
		t.Fatalf("%s: receiver got %d transfers, want %d: %v", site, len(got), e2eJobs, got)
	}
	for i, p := range got {
		want := fmt.Sprintf("<done>%d</done>", i+1)
		if p != want {
			t.Fatalf("%s: transfer %d = %q, want %q (full: %v)", site, i, p, want, got)
		}
	}
}

// e2eStride picks the sweep stride: every site normally, a sampled subset
// under -short (CI). The first and last sites are always included.
func e2eStride(t *testing.T, total, shortSamples, fullSamples int) int {
	samples := fullSamples
	if testing.Short() {
		samples = shortSamples
	}
	if samples <= 0 || total <= samples {
		return 1
	}
	return total/samples + 1
}

// TestE2ETortureFaultFree enumerates the op sites and proves the pipeline
// meets exactly-once with no faults at all — the baseline every crash-site
// iteration is compared against.
func TestE2ETortureFaultFree(t *testing.T) {
	r := newE2ERun(t, 1, 1)
	got := r.run()
	checkExactlyOnce(t, got, "fault-free")
	if r.fs.Ops() == 0 || r.fn.Ops() == 0 {
		t.Fatalf("op enumeration empty: disk=%d net=%d", r.fs.Ops(), r.fn.Ops())
	}
	t.Logf("enumerated %d disk op sites, %d net op sites", r.fs.Ops(), r.fn.Ops())
}

// TestE2ETortureStorageCrashSweep crashes the whole node at enumerated
// disk op sites (write/sync/truncate) and asserts end-to-end exactly-once
// after each crash-restart.
func TestE2ETortureStorageCrashSweep(t *testing.T) {
	probe := newE2ERun(t, 1, 1)
	checkExactlyOnce(t, probe.run(), "probe")
	sites := probe.fs.Ops()
	stride := e2eStride(t, sites, 8, 48)
	t.Logf("sweeping %d of %d disk sites (stride %d)", (sites+stride-1)/stride, sites, stride)
	for k := 1; k <= sites; k += stride {
		k := k
		t.Run(fmt.Sprintf("disk-op-%d", k), func(t *testing.T) {
			r := newE2ERun(t, int64(42+k), int64(100+k))
			r.fs.CrashAt(k)
			checkExactlyOnce(t, r.run(), fmt.Sprintf("crash at disk op %d", k))
		})
	}
}

// TestE2ETortureNetCrashSweep crashes the whole node at enumerated network
// op sites — "the node dies as packet k arrives/departs" — covering the
// windows between a transfer, its enqueue, its ack, and its forward.
func TestE2ETortureNetCrashSweep(t *testing.T) {
	probe := newE2ERun(t, 1, 1)
	checkExactlyOnce(t, probe.run(), "probe")
	sites := probe.fn.Ops()
	stride := e2eStride(t, sites, 8, 48)
	t.Logf("sweeping %d of %d net sites (stride %d)", (sites+stride-1)/stride, sites, stride)
	for k := 1; k <= sites; k += stride {
		k := k
		t.Run(fmt.Sprintf("net-op-%d", k), func(t *testing.T) {
			r := newE2ERun(t, int64(7000+k), int64(9000+k))
			r.fn.SetOpHook(func(op gateway.NetOp) {
				if op.N == k {
					r.fs.CrashNow()
				}
			})
			checkExactlyOnce(t, r.run(), fmt.Sprintf("crash at net op %d", k))
		})
	}
}

// TestE2ETortureChaosMatrix is the full matrix for the nightly run: seeded
// network chaos (drop, duplicate, reorder) combined with a mid-workload
// whole-node crash, across several seeds. Under -short a single cell runs.
func TestE2ETortureChaosMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			r := newE2ERun(t, seed, seed*31)
			r.fn.SetDropRate(0.10)
			r.fn.SetDupRate(0.05)
			r.fn.SetReorderRate(0.05)
			// One storage crash mid-workload on top of the chaos.
			r.fs.CrashAt(int(200 + seed*97))
			checkExactlyOnce(t, r.run(), fmt.Sprintf("chaos seed %d", seed))
		})
	}
}

// tortureStoreOptions mirrors the msgstore torture configuration: small
// buffer pool (forces mid-run write-backs), durable commits, every byte
// through the FaultFS.
func tortureStoreOptions(fs *store.FaultFS) msgstore.Options {
	return msgstore.Options{
		Store: store.Options{
			VFS:             fs,
			BufferPages:     16,
			SyncCommits:     true,
			UnloggedDeletes: true,
		},
		CacheDocs: 8,
	}
}
