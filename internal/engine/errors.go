package engine

import (
	"fmt"
	"time"

	"demaq/internal/msgstore"
	"demaq/internal/property"
	"demaq/internal/rule"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

// Error handling (paper Sec. 3.6): "like all other events in the Demaq
// system, errors are represented by XML messages sent to error queues".
// The error document follows the predefined schema below; it embeds the
// triggering message so error handlers (e.g. the deadLink rule of Fig. 10)
// can compensate. Error queues are resolved rule → queue → system.

// SystemErrorQueue is the engine-declared fallback error queue. It is a
// persistent basic queue so that "eventual reaction to an error" survives
// failures, as the paper recommends.
const SystemErrorQueue = "systemErrors"

// ErrorKind classifies errors per Sec. 3.6.
type ErrorKind string

// Error kinds.
const (
	ErrorApplication ErrorKind = "application"
	ErrorMessage     ErrorKind = "message"
	ErrorNetwork     ErrorKind = "network"
	ErrorSystem      ErrorKind = "system"
)

// buildErrorDoc constructs the error message document:
//
//	<error>
//	  <kind>application</kind>
//	  <code>XPTY0004</code>
//	  <rule>checkCreditRating</rule>
//	  <queue>finance</queue>
//	  <description>...</description>
//	  <disconnectedTransport/>          (network errors only)
//	  <initialMessage> ...payload... </initialMessage>
//	</error>
func buildErrorDoc(kind ErrorKind, code, ruleName, queue, description string, initial *xmldom.Node) *xmldom.Node {
	b := xmldom.NewBuilder()
	b.StartElement(xmldom.Name{Local: "error"})
	b.Element(xmldom.Name{Local: "kind"}, string(kind))
	if code != "" {
		b.Element(xmldom.Name{Local: "code"}, code)
	}
	if ruleName != "" {
		b.Element(xmldom.Name{Local: "rule"}, ruleName)
	}
	if queue != "" {
		b.Element(xmldom.Name{Local: "queue"}, queue)
	}
	b.Element(xmldom.Name{Local: "description"}, description)
	if kind == ErrorNetwork {
		b.StartElement(xmldom.Name{Local: "disconnectedTransport"})
		b.EndElement()
	}
	if initial != nil {
		b.StartElement(xmldom.Name{Local: "initialMessage"})
		b.Subtree(initial)
		b.EndElement()
	}
	b.EndElement()
	return b.Done()
}

// classify derives the error kind and code.
func classify(err error) (ErrorKind, string) {
	switch e := err.(type) {
	case *xquery.DynError:
		return ErrorApplication, e.Code
	case *xmldom.ParseError:
		return ErrorMessage, "DQME0001"
	}
	return ErrorSystem, ""
}

// errorQueueFor resolves the error queue for a rule/queue pair.
func (e *Engine) errorQueueFor(r *rule.Rule, queue string) string {
	if r != nil && r.ErrorQueue != "" {
		return r.ErrorQueue
	}
	if decl := e.queueDecl(queue); decl != nil && decl.ErrorQueue != "" {
		return decl.ErrorQueue
	}
	if _, ok := e.ms.Queue(SystemErrorQueue); ok {
		return SystemErrorQueue
	}
	return ""
}

// emitError enqueues an error message (its own transaction: the failing
// processing transaction has been rolled back or completed separately).
func (e *Engine) emitError(queue string, id msgstore.MsgID, doc *xmldom.Node, r *rule.Rule, cause error) {
	e.stats.errors.Add(1)
	kind, code := classify(cause)
	ruleName := ""
	if r != nil {
		ruleName = r.Name
	}
	target := e.errorQueueFor(r, queue)
	if target == "" {
		e.log.Error("rule error with no error queue configured",
			"queue", queue, "rule", ruleName, "msg", id, "err", cause)
		return
	}
	var initial *xmldom.Node
	if doc != nil {
		initial = doc.Root()
	}
	errDoc := buildErrorDoc(kind, code, ruleName, queue, cause.Error(), initial)
	now := time.Now().UTC()
	system := map[string]xdm.Value{
		property.SysCreatingRule: xdm.NewString("demaq:errorHandler"),
		property.SysCreated:      xdm.NewDateTime(now),
	}
	props, err := e.prog.Properties.Evaluate(target, errDoc, nil, nil, system, now)
	if err != nil {
		e.log.Error("error-message property evaluation failed", "err", err)
		props = system
	}
	tx := e.ms.Begin()
	nid, err := tx.Enqueue(target, errDoc, props, now)
	if err != nil {
		tx.Abort()
		e.log.Error("error enqueue failed", "target", target, "err", err)
		return
	}
	if _, err := tx.Commit(); err != nil {
		e.log.Error("error enqueue commit failed", "target", target, "err", err)
		return
	}
	e.slices.OnEnqueue(nid, target, props)
	if q, ok := e.ms.Queue(target); ok {
		e.routeNewMessage(q, nid)
	}
	e.log.Warn("error routed to error queue",
		"queue", queue, "rule", ruleName, "target", target, "err", cause)
}

// handleRuleError consumes a message whose processing failed
// unrecoverably: the message is marked processed (exactly-once) and the
// error is materialized.
func (e *Engine) handleRuleError(queue string, id msgstore.MsgID, cause error) {
	doc, _ := e.ms.Doc(id)
	tx := e.ms.Begin()
	tx.MarkProcessed(id)
	if _, err := tx.Commit(); err != nil {
		e.log.Error("failed to consume message after error", "id", id, "err", err)
	}
	e.stats.processed.Add(1)
	e.emitError(queue, id, doc, nil, cause)
}

var _ = fmt.Sprintf
