package engine

import (
	"fmt"
	"io/fs"
	"strings"
	"sync"
	"time"

	"demaq/internal/gateway"
	"demaq/internal/msgstore"
	"demaq/internal/property"
	"demaq/internal/qdl"
	"demaq/internal/wsdl"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// gatewayService connects gateway queues to transports (paper Sec. 2.1.2 /
// 4.2). Outgoing gateway queues are consumed by sender workers: each
// unprocessed message is transmitted to the endpoint resolved from the
// queue's WSDL interface; the message is marked processed only once the
// transfer completed (with the reliable-messaging policy: acknowledged), so
// in-flight transfers survive crashes in the persistent queue. Incoming
// gateway queues subscribe an endpoint and enqueue every delivery with the
// Sender system property.
//
// Network failures are not hidden (Sec. 2.1.2): a failed transfer becomes
// an <error><disconnectedTransport/> message in the error queue, which
// application rules compensate (Fig. 10's deadLink rule).
type gatewayService struct {
	eng *Engine

	mu           sync.Mutex
	outgoing     map[string]*outgoingGW
	incoming     map[string]*incomingGW
	incomingRels []*gateway.Reliable
	inflight     int
	started      bool
	stopCh       chan struct{}
	unsubs       []func()
}

// msSessionStore adapts the message store's persisted session records to
// the gateway layer's SessionStore: send-sequence reservations and
// receive dedup windows live in the "sys:sessions" heap, restored at Open.
type msSessionStore struct {
	ms *msgstore.Store
}

func (s msSessionStore) SendNext(source string) uint64 {
	st, ok := s.ms.SessionSnapshot(msgstore.SessionSend, source, "")
	if !ok {
		return 0
	}
	return st.Seq
}

func (s msSessionStore) ReserveSend(source string, upTo uint64) error {
	return s.ms.PutSession(msgstore.SessionState{Kind: msgstore.SessionSend, Endpoint: source, Seq: upTo})
}

func (s msSessionStore) RecvSessions(endpoint string) []gateway.RecvSession {
	states := s.ms.RecvSessionStates(endpoint)
	out := make([]gateway.RecvSession, 0, len(states))
	for _, st := range states {
		out = append(out, gateway.RecvSession{Peer: st.Peer, High: st.Seq, Window: st.Window})
	}
	return out
}

// sessionStore returns the durable session backend, or nil when the
// configuration opts out (experiment E18 baseline).
func (g *gatewayService) sessionStore() gateway.SessionStore {
	if g.eng.cfg.NoDurableSessions {
		return nil
	}
	return msSessionStore{ms: g.eng.ms}
}

type outgoingGW struct {
	decl     *qdl.QueueDecl
	dest     string
	element  string
	reliable *gateway.Reliable
	tr       gateway.Transport
	work     chan msgstore.MsgID
}

type incomingGW struct {
	decl *qdl.QueueDecl
	addr string
}

func newGatewayService(e *Engine) *gatewayService {
	return &gatewayService{
		eng:      e,
		outgoing: map[string]*outgoingGW{},
		incoming: map[string]*incomingGW{},
		stopCh:   make(chan struct{}),
	}
}

// resolve reads the queue's WSDL interface and returns its port.
func (g *gatewayService) resolve(decl *qdl.QueueDecl) (*wsdl.Port, error) {
	if decl.Interface == "" {
		return nil, fmt.Errorf("engine: gateway queue %q has no interface", decl.Name)
	}
	data, err := fs.ReadFile(g.eng.cfg.Resources, decl.Interface)
	if err != nil {
		return nil, fmt.Errorf("engine: gateway %q: %w", decl.Name, err)
	}
	def, err := wsdl.Parse(data)
	if err != nil {
		return nil, err
	}
	return def.Port(decl.Port)
}

// transportFor builds the (possibly policy-wrapped) transport for a
// declaration.
func (g *gatewayService) transportFor(decl *qdl.QueueDecl, addr string) (gateway.Transport, *qdl.Policy, error) {
	base, err := g.eng.cfg.Transports.For(addr)
	if err != nil {
		return nil, nil, err
	}
	var reliablePolicy *qdl.Policy
	tr := base
	for i := range decl.Policies {
		pol := &decl.Policies[i]
		switch pol.Name {
		case "WS-ReliableMessaging":
			reliablePolicy = pol
		case "WS-Security":
			key, err := fs.ReadFile(g.eng.cfg.Resources, pol.File)
			if err != nil {
				return nil, nil, fmt.Errorf("engine: gateway %q: security policy: %w", decl.Name, err)
			}
			tr = gateway.NewSecured(tr, []byte(strings.TrimSpace(string(key))))
		default:
			return nil, nil, fmt.Errorf("engine: gateway %q: unknown policy %q", decl.Name, pol.Name)
		}
	}
	return tr, reliablePolicy, nil
}

func (g *gatewayService) declareOutgoing(decl *qdl.QueueDecl) {
	port, err := g.resolve(decl)
	if err != nil {
		g.eng.log.Error("outgoing gateway disabled", "queue", decl.Name, "err", err)
		return
	}
	tr, reliablePol, err := g.transportFor(decl, port.Address)
	if err != nil {
		g.eng.log.Error("outgoing gateway disabled", "queue", decl.Name, "err", err)
		return
	}
	gw := &outgoingGW{decl: decl, dest: port.Address, element: port.Element, tr: tr,
		work: make(chan msgstore.MsgID, 1024)}
	if reliablePol != nil {
		source := port.Address + "#reply-" + decl.Name
		rel, err := gateway.NewReliable(tr, source, 25*time.Millisecond, 40)
		if err != nil {
			g.eng.log.Error("outgoing gateway disabled", "queue", decl.Name, "err", err)
			return
		}
		// Subscribe only to receive acknowledgements.
		if err := rel.Subscribe(func([]byte, map[string]string) error { return nil }); err != nil {
			g.eng.log.Error("outgoing gateway ack endpoint failed", "queue", decl.Name, "err", err)
			return
		}
		gw.reliable = rel
	}
	g.mu.Lock()
	g.outgoing[decl.Name] = gw
	g.mu.Unlock()
}

func (g *gatewayService) declareIncoming(decl *qdl.QueueDecl) {
	port, err := g.resolve(decl)
	if err != nil {
		g.eng.log.Error("incoming gateway disabled", "queue", decl.Name, "err", err)
		return
	}
	g.mu.Lock()
	g.incoming[decl.Name] = &incomingGW{decl: decl, addr: port.Address}
	g.mu.Unlock()
}

// start subscribes incoming endpoints and launches outgoing senders.
func (g *gatewayService) start() {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return
	}
	g.started = true
	incoming := make([]*incomingGW, 0, len(g.incoming))
	for _, in := range g.incoming {
		incoming = append(incoming, in)
	}
	outgoing := make([]*outgoingGW, 0, len(g.outgoing))
	for _, out := range g.outgoing {
		outgoing = append(outgoing, out)
	}
	g.mu.Unlock()

	for _, in := range incoming {
		in := in
		tr, _, err := g.transportFor(in.decl, in.addr)
		if err != nil {
			g.eng.log.Error("incoming gateway failed", "queue", in.decl.Name, "err", err)
			continue
		}
		// Incoming reliable endpoints ack and deduplicate.
		reliable := false
		for _, pol := range in.decl.Policies {
			if pol.Name == "WS-ReliableMessaging" {
				reliable = true
			}
		}
		if reliable {
			rel, err := gateway.NewReliableOptions(tr, in.addr, gateway.ReliableOptions{
				RetryInterval: 25 * time.Millisecond,
				MaxRetries:    40,
				Session:       g.sessionStore(),
			})
			if err == nil {
				// The handler threads the post-admit dedup snapshot into the
				// enqueue transaction: the transfer and the window update
				// that suppresses its retransmits commit atomically, and the
				// ack goes out only after both are durable.
				addr, durable := in.addr, !g.eng.cfg.NoDurableSessions
				err = rel.Subscribe(func(payload []byte, props map[string]string) error {
					var sess *msgstore.SessionState
					if durable {
						if rs, ok := rel.PendingRecvSession(props); ok {
							sess = &msgstore.SessionState{
								Kind: msgstore.SessionRecv, Endpoint: addr,
								Peer: rs.Peer, Seq: rs.High, Window: rs.Window,
							}
						}
					}
					return g.deliver(in.decl.Name, payload, props, sess)
				})
			}
			if err != nil {
				g.eng.log.Error("incoming gateway failed", "queue", in.decl.Name, "err", err)
				continue
			}
			g.mu.Lock()
			g.incomingRels = append(g.incomingRels, rel)
			g.mu.Unlock()
			continue
		}
		handler := func(payload []byte, props map[string]string) error {
			return g.deliver(in.decl.Name, payload, props, nil)
		}
		unsub, err := tr.Subscribe(in.addr, handler)
		if err != nil {
			g.eng.log.Error("incoming gateway failed", "queue", in.decl.Name, "err", err)
			continue
		}
		g.mu.Lock()
		g.unsubs = append(g.unsubs, unsub)
		g.mu.Unlock()
	}

	for _, out := range outgoing {
		out := out
		g.eng.wg.Add(1)
		go g.senderLoop(out)
	}
}

// stopIncoming unsubscribes every incoming endpoint — reliable and plain —
// so no new transfer is admitted (or acknowledged) once shutdown begins.
// Idempotent; Shutdown calls it before draining, stop calls it again.
func (g *gatewayService) stopIncoming() {
	g.mu.Lock()
	rels := g.incomingRels
	g.incomingRels = nil
	unsubs := g.unsubs
	g.unsubs = nil
	g.mu.Unlock()
	for _, r := range rels {
		r.Close()
	}
	for _, u := range unsubs {
		u()
	}
}

func (g *gatewayService) stop() {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.started = false
	g.mu.Unlock()
	g.stopIncoming()
	g.mu.Lock()
	for _, out := range g.outgoing {
		if out.reliable != nil {
			out.reliable.Close()
		}
	}
	g.mu.Unlock()
	close(g.stopCh)
}

// submit queues an outgoing message for transmission. On overflow or
// shutdown the message simply stays unprocessed in its persistent queue
// and is re-submitted on the next start.
func (g *gatewayService) submit(queue string, id msgstore.MsgID) {
	g.mu.Lock()
	gw, ok := g.outgoing[queue]
	if ok {
		g.inflight++
	}
	g.mu.Unlock()
	if !ok {
		g.eng.log.Warn("message in outgoing gateway queue without transport", "queue", queue, "id", id)
		return
	}
	select {
	case gw.work <- id:
	default:
		g.mu.Lock()
		g.inflight--
		g.mu.Unlock()
		g.eng.log.Warn("outgoing gateway backlog full; message deferred to restart", "queue", queue, "id", id)
	}
}

func (g *gatewayService) idle() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight == 0
}

func (g *gatewayService) senderLoop(gw *outgoingGW) {
	defer g.eng.wg.Done()
	for {
		select {
		case <-g.stopCh:
			return
		case id := <-gw.work:
			g.sendOne(gw, id)
			g.mu.Lock()
			g.inflight--
			g.mu.Unlock()
		}
	}
}

func (g *gatewayService) sendOne(gw *outgoingGW, id msgstore.MsgID) {
	e := g.eng
	msg, ok := e.ms.Get(id)
	if !ok || msg.Processed {
		return
	}
	doc, err := e.ms.Doc(id)
	if err != nil {
		e.log.Error("gateway payload load failed", "id", id, "err", err)
		return
	}
	if gw.element != "" && doc.Root() != nil && doc.Root().Name.Local != gw.element {
		e.handleRuleError(gw.decl.Name, id,
			fmt.Errorf("payload element <%s> does not match interface element <%s>", doc.Root().Name.Local, gw.element))
		return
	}
	// Outgoing messages cross the text/binary boundary here: payloads are
	// stored as binary trees and lazily re-serialized to wire XML.
	payload := xmldom.AppendSerialize(nil, doc)
	props := map[string]string{}
	for k, v := range msg.Props {
		props[k] = v.StringValue()
	}
	complete := func(err error) {
		if err != nil {
			// Network failure surfaces as an application-visible error
			// message (Sec. 3.6), and the message is consumed.
			e.consumeGatewayMessage(id)
			e.emitNetworkError(gw.decl.Name, doc, err)
			return
		}
		e.consumeGatewayMessage(id)
	}
	if gw.reliable != nil {
		// The durable message ID is the reliable sequence number: a
		// retransmit after a crash-restart reuses the pre-crash number, so
		// the receiver's dedup window suppresses the one duplicate a
		// restored send counter alone could not.
		done := make(chan error, 1)
		gw.reliable.SendAsyncSeq(gw.dest, uint64(id), payload, props, func(err error) { done <- err })
		complete(<-done)
		return
	}
	complete(gw.tr.Send(gw.dest, payload, props))
}

func (e *Engine) consumeGatewayMessage(id msgstore.MsgID) {
	tx := e.ms.Begin()
	tx.MarkProcessed(id)
	if _, err := tx.Commit(); err != nil {
		e.log.Error("gateway consume failed", "id", id, "err", err)
	}
	e.stats.processed.Add(1)
}

func (e *Engine) emitNetworkError(queue string, doc *xmldom.Node, cause error) {
	e.stats.errors.Add(1)
	target := e.errorQueueFor(nil, queue)
	if target == "" {
		e.log.Error("network error with no error queue", "queue", queue, "err", cause)
		return
	}
	var initial *xmldom.Node
	if doc != nil {
		initial = doc.Root()
	}
	errDoc := buildErrorDoc(ErrorNetwork, "DQNET0001", "", queue, cause.Error(), initial)
	now := time.Now().UTC()
	props := map[string]xdm.Value{
		property.SysCreatingRule: xdm.NewString("demaq:gateway"),
		property.SysCreated:      xdm.NewDateTime(now),
	}
	if pv, err := e.prog.Properties.Evaluate(target, errDoc, nil, nil, props, now); err == nil {
		props = pv
	}
	tx := e.ms.Begin()
	nid, err := tx.Enqueue(target, errDoc, props, now)
	if err != nil {
		tx.Abort()
		e.log.Error("network error enqueue failed", "err", err)
		return
	}
	if _, err := tx.Commit(); err != nil {
		return
	}
	e.slices.OnEnqueue(nid, target, props)
	if q, ok := e.ms.Queue(target); ok {
		e.routeNewMessage(q, nid)
	}
}

// deliver enqueues an external message arriving at an incoming gateway,
// validating against the queue schema and recording transport metadata as
// system properties (Sec. 2.2 "System"). A non-nil sess is the reliable
// receive-session snapshot persisted atomically with the enqueue.
func (g *gatewayService) deliver(queue string, payload []byte, props map[string]string, sess *msgstore.SessionState) error {
	e := g.eng
	explicit := map[string]xdm.Value{}
	if s := props["Sender"]; s != "" {
		explicit[property.SysSender] = xdm.NewString(s)
	}
	if c := props["Connection"]; c != "" {
		explicit[property.SysConnection] = xdm.NewString(c)
	}
	if decl := e.queueDecl(queue); decl != nil && decl.Schema != "" {
		// Schema queues take the tree path: validation walks the whole
		// document and the error message embeds it.
		doc, err := xmldom.Parse(payload)
		if err != nil {
			// Message-related error (Sec. 3.6): a malformed external document.
			e.emitError(queue, 0, nil, nil, err)
			return err
		}
		if err := e.validateSchema(decl, doc); err != nil {
			e.emitError(queue, 0, doc, nil, err)
			return err
		}
		_, err = e.enqueueDoc(queue, doc, explicit, sess)
		return err
	}
	// Streaming ingest straight from the wire buffer; enqueueWire copies
	// what it keeps, so the transport may recycle payload afterwards.
	_, err := e.enqueueWire(queue, payload, explicit, sess)
	if err != nil {
		// Distinguish a malformed document (an application-visible error
		// message, Sec. 3.6) from internal enqueue failures. The re-parse
		// only happens on this cold error path.
		if _, perr := xmldom.Parse(payload); perr != nil {
			e.emitError(queue, 0, nil, nil, perr)
			return perr
		}
	}
	return err
}
