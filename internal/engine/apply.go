package engine

import (
	"fmt"
	"time"

	"demaq/internal/msgstore"
	"demaq/internal/property"
	locks "demaq/internal/txn"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

// evalRuntime implements xquery.Runtime against the engine inside one
// message-processing transaction. Reads acquire the logical locks that make
// concurrent processing serializable (Sec. 4.3).
type evalRuntime struct {
	eng   *Engine
	txnID uint64
	msgID msgstore.MsgID
	doc   *xmldom.Node
	queue string
	props map[string]xdm.Value
	now   time.Time

	curSlicing string
	curKey     string
}

func (rt *evalRuntime) Message() (*xmldom.Node, error) { return rt.doc, nil }

func (rt *evalRuntime) Queue(name string) ([]*xmldom.Node, error) {
	if name == "" {
		name = rt.queue
	}
	// Whole-queue read: shared lock at queue granularity.
	if err := rt.eng.lm.Acquire(rt.txnID, locks.Resource("q", name), locks.S); err != nil {
		return nil, err
	}
	return rt.eng.ms.QueueDocs(name)
}

func (rt *evalRuntime) Property(name string) (xdm.Value, error) {
	if v, ok := rt.props[name]; ok {
		return v, nil
	}
	return xdm.Value{}, fmt.Errorf("message has no property %q", name)
}

func (rt *evalRuntime) Slice() ([]*xmldom.Node, error) {
	if rt.curSlicing == "" {
		return nil, fmt.Errorf("qs:slice() outside a slicing rule")
	}
	if rt.eng.cfg.Granularity == LockSlice {
		if err := rt.eng.lm.Acquire(rt.txnID, locks.Resource("sl", rt.curSlicing, rt.curKey), locks.S); err != nil {
			return nil, err
		}
	}
	ids := rt.eng.slices.SliceMembers(rt.curSlicing, rt.curKey)
	docs := make([]*xmldom.Node, 0, len(ids))
	for _, id := range ids {
		d, err := rt.eng.ms.Doc(id)
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	return docs, nil
}

func (rt *evalRuntime) SliceKey() (xdm.Value, error) {
	if rt.curSlicing == "" {
		return xdm.Value{}, fmt.Errorf("qs:slicekey() outside a slicing rule")
	}
	// Return the typed property value where possible.
	if prop, ok := rt.eng.prog.SlicingProps[rt.curSlicing]; ok {
		if v, ok := rt.props[prop]; ok {
			return v, nil
		}
	}
	return xdm.NewString(rt.curKey), nil
}

func (rt *evalRuntime) Collection(name string) ([]*xmldom.Node, error) {
	return rt.eng.ms.Collection(name), nil
}

func (rt *evalRuntime) Now() time.Time { return rt.now }

// batchItem carries one message's evaluation result — its pending update
// list plus the context needed to apply it — into the combined batch
// commit.
type batchItem struct {
	id       msgstore.MsgID
	props    map[string]xdm.Value // parent props, inherited by child messages
	updates  *xquery.UpdateList
	ruleName string
}

// applyUpdates executes one message's pending update list and marks it
// processed, in one message-store transaction: the single-message shape of
// applyBatch.
func (e *Engine) applyUpdates(txnID uint64, id msgstore.MsgID, queue string,
	parentProps map[string]xdm.Value, updates *xquery.UpdateList, now time.Time, ruleName string) error {
	return e.applyBatch(txnID, queue, []batchItem{
		{id: id, props: parentProps, updates: updates, ruleName: ruleName},
	}, now)
}

// applyBatch executes the pending update lists of a whole batch and marks
// every triggering message processed, in one message-store transaction.
// Target queues and slices are locked before any effect is applied (strict
// 2PL: everything is held until the worker releases at transaction end);
// within the batch each distinct resource costs one lock-manager round.
func (e *Engine) applyBatch(txnID uint64, queue string, items []batchItem, now time.Time) error {
	type staged struct {
		up    *xquery.EnqueueUpdate
		props map[string]xdm.Value
		id    msgstore.MsgID
		queue *msgstore.Queue
	}
	var stagedEnqs []staged

	// lockOnce dedupes lock acquisition across the batch: re-acquiring a
	// held resource is already cheap inside the manager, but every call
	// still crosses its global mutex, which the batch should touch once
	// per distinct resource, not once per update.
	var acquired map[string]bool
	lockOnce := func(res string, mode locks.Mode) error {
		if acquired[res] {
			return nil
		}
		if err := e.lm.Acquire(txnID, res, mode); err != nil {
			return err
		}
		if acquired == nil {
			acquired = make(map[string]bool, 8)
		}
		acquired[res] = true
		return nil
	}

	// Lock targets first.
	for _, it := range items {
		for _, up := range it.updates.Updates {
			switch u := up.(type) {
			case *xquery.EnqueueUpdate:
				mode := locks.IX
				if e.cfg.Granularity == LockQueue {
					mode = locks.X
				}
				if err := lockOnce(locks.Resource("q", u.Queue), mode); err != nil {
					return err
				}
			case *xquery.ResetUpdate:
				if e.cfg.Granularity == LockSlice {
					if err := lockOnce(locks.Resource("sl", u.Slicing, u.Key.StringValue()), locks.X); err != nil {
						return err
					}
				}
			}
		}
	}

	tx := e.ms.Begin()
	processed := make([]msgstore.MsgID, 0, len(items))
	for _, it := range items {
		processed = append(processed, it.id)
		for _, up := range it.updates.Updates {
			switch u := up.(type) {
			case *xquery.EnqueueUpdate:
				q, ok := e.ms.Queue(u.Queue)
				if !ok {
					tx.Abort()
					return fmt.Errorf("engine: enqueue into unknown queue %q", u.Queue)
				}
				system := map[string]xdm.Value{
					property.SysCreatingRule: xdm.NewString(it.ruleName),
					property.SysCreated:      xdm.NewDateTime(now),
				}
				props, err := e.prog.Properties.Evaluate(u.Queue, u.Doc, u.Props, it.props, system, now)
				if err != nil {
					tx.Abort()
					return err
				}
				// Validate against the queue schema, if declared.
				if decl := e.queueDecl(u.Queue); decl != nil && decl.Schema != "" {
					if err := e.validateSchema(decl, u.Doc); err != nil {
						tx.Abort()
						return err
					}
				}
				nid, err := tx.Enqueue(u.Queue, u.Doc, props, now)
				if err != nil {
					tx.Abort()
					return err
				}
				// Lock the new message's slices (they change shape).
				if e.cfg.Granularity == LockSlice {
					for propName, v := range props {
						for _, sl := range e.slicingsOn(propName, u.Queue) {
							if err := lockOnce(locks.Resource("sl", sl, v.StringValue()), locks.X); err != nil {
								tx.Abort()
								return err
							}
						}
					}
				}
				stagedEnqs = append(stagedEnqs, staged{up: u, props: props, id: nid, queue: q})
			case *xquery.ResetUpdate:
				tx.RecordReset(u.Slicing, u.Key.StringValue())
			}
		}
	}
	if err := tx.MarkProcessedAll(processed); err != nil {
		tx.Abort()
		return err
	}
	if _, err := tx.Commit(); err != nil {
		return err
	}

	// Post-commit: derived state and routing.
	for _, st := range stagedEnqs {
		e.slices.OnEnqueue(st.id, st.up.Queue, st.props)
		e.stats.enqueued.Add(1)
		e.routeNewMessage(st.queue, st.id)
	}
	for _, re := range tx.AppliedResets {
		e.slices.Reset(re.Slicing, re.Key, msgstore.MsgID(re.Watermark))
		e.stats.resets.Add(1)
	}
	return nil
}

// slicingsOn returns the slicings over a property applicable to a queue.
func (e *Engine) slicingsOn(propName, queue string) []string {
	def, ok := e.prog.Properties.Def(propName)
	if !ok {
		return nil
	}
	if _, onQueue := def.PerQueue[queue]; !onQueue {
		return nil
	}
	var out []string
	for sl, p := range e.prog.SlicingProps {
		if p == propName {
			out = append(out, sl)
		}
	}
	return out
}
