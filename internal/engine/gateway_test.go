package engine

import (
	"testing"
	"testing/fstest"
	"time"

	"demaq/internal/gateway"
	"demaq/internal/qdl"
)

// Two Demaq nodes connected over the simulated network: a buyer node sends
// capacity requests through an outgoing gateway; the supplier node receives
// them on an incoming gateway, processes them with a rule, and replies
// through its own outgoing gateway back to the buyer (Sec. 2.1.2: "the
// distribution of applications over several nodes by replacing local queues
// with pairs of gateway queues").
const buyerApp = `
create queue work kind basic mode persistent;
create queue supplierOut kind outgoingGateway mode persistent
  interface supplier.wsdl port CapacityPort
  using WS-ReliableMessaging policy rm.xml
  errorqueue netErrors;
create queue replies kind incomingGateway mode persistent
  interface buyer.wsdl port ReplyPort
  using WS-ReliableMessaging policy rm.xml;
create queue results kind basic mode persistent;
create queue netErrors kind basic mode persistent;
create rule forward for work errorqueue netErrors
  if (//capacityRequest) then
    do enqueue <plantCapacityInfo>{//requestID} {//qty}</plantCapacityInfo>
      into supplierOut;
create rule collect for replies
  if (//capacityResult) then
    do enqueue <result>{//requestID}{//verdict}</result> into results;
`

const supplierApp = `
create queue requests kind incomingGateway mode persistent
  interface supplier.wsdl port CapacityPort
  using WS-ReliableMessaging policy rm.xml;
create queue buyerOut kind outgoingGateway mode persistent
  interface buyer.wsdl port ReplyPort
  using WS-ReliableMessaging policy rm.xml;
create rule answer for requests
  if (//plantCapacityInfo) then
    do enqueue <capacityResult>{//requestID}
      <verdict>{if (number(//qty) < 100) then "accept" else "exceeded"}</verdict>
    </capacityResult> into buyerOut;
`

var gatewayFiles = fstest.MapFS{
	"supplier.wsdl": &fstest.MapFile{Data: []byte(`
		<definitions><service name="Supplier">
		  <port name="CapacityPort"><address location="sim://supplier/requests"/></port>
		</service></definitions>`)},
	"buyer.wsdl": &fstest.MapFile{Data: []byte(`
		<definitions><service name="Buyer">
		  <port name="ReplyPort"><address location="sim://buyer/replies"/></port>
		</service></definitions>`)},
	"rm.xml": &fstest.MapFile{Data: []byte(`<policy/>`)},
}

func twoNodes(t *testing.T, net *gateway.Network) (buyer, supplier *Engine) {
	t.Helper()
	reg := gateway.NewRegistry(net)
	mk := func(src string) *Engine {
		app, err := qdl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{
			Dir: t.TempDir(), Workers: 2,
			Resources:  gatewayFiles,
			Transports: reg,
		}, app)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Stop() })
		return e
	}
	buyer = mk(buyerApp)
	supplier = mk(supplierApp)
	supplier.Start() // incoming endpoint must exist before the buyer sends
	buyer.Start()
	return buyer, supplier
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never satisfied")
}

func TestGatewayRoundTrip(t *testing.T) {
	net := gateway.NewNetwork(11)
	defer net.Close()
	buyer, _ := twoNodes(t, net)
	buyer.EnqueueXML("work", `<capacityRequest><requestID>g1</requestID><qty>5</qty></capacityRequest>`, nil)
	waitFor(t, 10*time.Second, func() bool {
		docs, _ := buyer.MessageStore().QueueDocs("results")
		return len(docs) == 1
	})
	docs, _ := buyer.MessageStore().QueueDocs("results")
	if docs[0].Root().FirstChildElement("verdict").StringValue() != "accept" {
		t.Fatalf("verdict: %s", docs[0].StringValue())
	}
	// The outgoing message was consumed after the ack.
	msgs, _ := buyer.MessageStore().Messages("supplierOut")
	if len(msgs) != 1 || !msgs[0].Processed {
		t.Fatalf("outgoing gateway queue: %+v", msgs)
	}
}

func TestGatewayReliableUnderLoss(t *testing.T) {
	net := gateway.NewNetwork(23)
	defer net.Close()
	net.SetLossRate(0.35)
	buyer, _ := twoNodes(t, net)
	const n = 10
	for i := 0; i < n; i++ {
		buyer.EnqueueXML("work",
			`<capacityRequest><requestID>L`+string(rune('0'+i))+`</requestID><qty>5</qty></capacityRequest>`, nil)
	}
	waitFor(t, 30*time.Second, func() bool {
		docs, _ := buyer.MessageStore().QueueDocs("results")
		return len(docs) == n
	})
	// Exactly-once to the application despite loss and retransmission.
	docs, _ := buyer.MessageStore().QueueDocs("results")
	seen := map[string]bool{}
	for _, d := range docs {
		key := d.Root().FirstChildElement("requestID").StringValue()
		if seen[key] {
			t.Fatalf("duplicate result %s", key)
		}
		seen[key] = true
	}
}

func TestGatewayDisconnectedProducesErrorMessage(t *testing.T) {
	net := gateway.NewNetwork(31)
	defer net.Close()
	buyer, _ := twoNodes(t, net)
	net.SetDown("sim://supplier/requests", true)
	buyer.EnqueueXML("work", `<capacityRequest><requestID>d1</requestID><qty>5</qty></capacityRequest>`, nil)
	waitFor(t, 10*time.Second, func() bool {
		docs, _ := buyer.MessageStore().QueueDocs("netErrors")
		return len(docs) == 1
	})
	docs, _ := buyer.MessageStore().QueueDocs("netErrors")
	root := docs[0].Root()
	if root.FirstChildElement("kind").StringValue() != "network" {
		t.Fatalf("error kind: %s", xmlOf(root))
	}
	if root.FirstChildElement("disconnectedTransport") == nil {
		t.Fatal("missing disconnectedTransport marker (Fig. 10)")
	}
	if root.FirstChildElement("initialMessage") == nil {
		t.Fatal("missing initial message")
	}
}

func xmlOf(n *docNode) string { return n.StringValue() }
