package engine

import "demaq/internal/xmldom"

type docNode = xmldom.Node

func parseDoc(src string) (*xmldom.Node, error) { return xmldom.ParseString(src) }
