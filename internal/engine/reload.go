package engine

import (
	"fmt"

	"demaq/internal/msgstore"
	"demaq/internal/qdl"
	"demaq/internal/rule"
	"demaq/internal/slicing"
)

// Reload replaces the running application program — the dynamic queue and
// rule evolution the paper lists as future work (Sec. 5: "each time an
// application evolves, the processing system has to be shut down and
// restarted. Clearly, this is unacceptable for zero-downtime
// environments"). This implementation is deliberately guarded:
//
//   - the engine must be idle (no message mid-processing): callers Drain
//     first; Reload fails otherwise rather than risking rules changing
//     under an in-flight pending update list;
//   - queues may be added but not removed, and an existing queue's kind
//     and mode are immutable (messages persist under the old contract);
//   - gateway and echo queues cannot be added at runtime (transports and
//     endpoint subscriptions are wired at Start);
//   - rules, properties, slicings and collections may change freely;
//     slice memberships are rebuilt from the store under the new
//     definitions, and persisted reset watermarks are replayed.
func (e *Engine) Reload(app *qdl.Application) error {
	prog, err := rule.Compile(app, e.cfg.Rules)
	if err != nil {
		return err
	}
	for _, q := range app.Queues {
		if q.Kind == qdl.KindEcho || q.Kind == qdl.KindOutgoingGateway {
			if plan := prog.QueuePlans[q.Name]; plan != nil && len(plan.Rules) > 0 {
				return fmt.Errorf("engine: rules cannot be attached to %s queue %q", q.Kind, q.Name)
			}
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.sched.Idle() {
		return fmt.Errorf("engine: reload requires an idle engine (drain first)")
	}

	// Validate queue evolution.
	oldDecls := map[string]*qdl.QueueDecl{}
	for _, q := range e.prog.App.Queues {
		oldDecls[q.Name] = q
	}
	for _, q := range app.Queues {
		old, exists := oldDecls[q.Name]
		if !exists {
			if q.Kind != qdl.KindBasic {
				return fmt.Errorf("engine: cannot add %s queue %q at runtime", q.Kind, q.Name)
			}
			continue
		}
		if old.Kind != q.Kind {
			return fmt.Errorf("engine: queue %q cannot change kind (%s → %s)", q.Name, old.Kind, q.Kind)
		}
		if old.Persistent != q.Persistent {
			return fmt.Errorf("engine: queue %q cannot change mode", q.Name)
		}
	}
	for name := range oldDecls {
		found := false
		for _, q := range app.Queues {
			if q.Name == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("engine: queue %q cannot be removed at runtime", name)
		}
	}

	// Apply: new queues, collections, program swap, derived-state rebuild.
	for _, q := range app.Queues {
		mode := msgstore.Persistent
		if !q.Persistent {
			mode = msgstore.Transient
		}
		if _, err := e.ms.CreateQueue(q.Name, mode, q.Priority); err != nil {
			return err
		}
		e.sched.DeclareQueue(q.Name, q.Priority)
	}
	for _, c := range app.Collections {
		if err := e.ms.CreateCollection(c.Name); err != nil {
			return err
		}
	}
	e.prog = prog
	e.schemas = nil
	decls := make(map[string]*qdl.QueueDecl, len(app.Queues))
	for _, q := range app.Queues {
		decls[q.Name] = q
	}
	e.decls = decls
	// Recompute the per-queue path projections under the new rules. Records
	// already stored under an old projection carry its fingerprint; a
	// mismatch at read time falls back to full materialization, so no
	// stored message ever loses data to a rule change.
	e.projs = e.computeProjections(prog, app)

	materialized := true
	if e.cfg.Materialized != nil {
		materialized = *e.cfg.Materialized
	}
	sm := slicing.NewManager(e.ms, prog.Properties, materialized)
	for name, propName := range prog.SlicingProps {
		sm.Define(name, propName)
	}
	if err := sm.Rebuild(); err != nil {
		return err
	}
	events, err := e.ms.ResetEvents()
	if err != nil {
		return err
	}
	for _, ev := range events {
		sm.Reset(ev.Slicing, ev.Key, msgstore.MsgID(ev.Watermark))
	}
	e.slices = sm
	e.log.Info("application reloaded",
		"queues", len(app.Queues), "rules", len(app.Rules), "slicings", len(app.Slicings))
	return nil
}
