package engine

import (
	"errors"
	"testing"
	"time"

	"demaq/internal/gateway"
	"demaq/internal/msgstore"
)

// budgetedOptions returns message-store options with a WAL budget and small
// segments, suitable for exercising the checkpoint scheduler in tests.
func budgetedOptions(soft, hard int64) msgstore.Options {
	o := msgstore.DefaultOptions()
	o.Store.SyncCommits = false
	o.Store.WALSegmentSize = 32 << 10
	o.Store.WALSoftBudget = soft
	o.Store.WALHardBudget = hard
	return o
}

// TestShutdownZeroReplay is the clean-shutdown contract end to end: a
// graceful Shutdown ends with a final checkpoint, so the next engine on the
// same directory replays zero WAL records during recovery.
func TestShutdownZeroReplay(t *testing.T) {
	dir := t.TempDir()
	e := newBasicEngine(t, Config{Dir: dir, Workers: 2})
	e.Start()
	for i := 0; i < 40; i++ {
		if _, err := e.EnqueueXML("in", "<m/>", nil); err != nil {
			t.Fatal(err)
		}
	}
	drained, err := e.Shutdown(10 * time.Second)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !drained {
		t.Fatal("shutdown did not drain")
	}

	e2 := newBasicEngine(t, Config{Dir: dir, Workers: 1})
	defer e2.Stop()
	st := e2.Stats()
	if st.RecoveryReplayed != 0 {
		t.Fatalf("clean shutdown must leave zero records to replay, reopened engine replayed %d", st.RecoveryReplayed)
	}
}

// TestWALHardBudgetSheds: with the live WAL at the hard budget and no
// checkpointer running (engine not started), admission refuses new ingest
// with the retryable overload verdict — the WAL cannot grow without bound.
func TestWALHardBudgetSheds(t *testing.T) {
	e := newBasicEngine(t, Config{Workers: 1, Store: budgetedOptions(4<<10, 8<<10)})
	defer e.Stop()
	var err error
	for i := 0; i < 1000; i++ {
		if _, err = e.EnqueueXML("in", "<m>payload-payload-payload-payload</m>", nil); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, gateway.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded once the WAL hits the hard budget, got: %v", err)
	}
	st := e.Stats()
	if st.WALShed == 0 {
		t.Fatal("WALShed should count the refused enqueue")
	}
	if st.WALLiveBytes < 8<<10 {
		t.Fatalf("shed fired below the hard budget: live=%d", st.WALLiveBytes)
	}
	// The store also throttled commits between the soft and hard budgets.
	if st.WALThrottles == 0 {
		t.Fatal("commits between the budgets should have been throttled")
	}
}

// TestCheckpointSchedulerBoundsWAL: a started engine with a WAL budget runs
// fuzzy checkpoints in the background, keeping the live WAL near the soft
// budget under sustained traffic — ingest is never shed because the head
// keeps advancing.
func TestCheckpointSchedulerBoundsWAL(t *testing.T) {
	e := newBasicEngine(t, Config{
		Workers: 2,
		Store:   budgetedOptions(16<<10, 1<<20),
	})
	e.Start()
	defer e.Stop()
	for i := 0; i < 400; i++ {
		if _, err := e.EnqueueXML("in", "<m>sustained-load-payload</m>", nil); err != nil {
			t.Fatalf("enqueue %d: %v (scheduler should keep the WAL under the hard budget)", i, err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return e.Stats().Checkpoints > 0 })
	waitFor(t, 10*time.Second, func() bool { return e.sched.Idle() })
	// Once idle, the next scheduler pass brings the live WAL back under the
	// soft budget (the last checkpoint's bracket records and page images
	// remain live by design).
	waitFor(t, 10*time.Second, func() bool {
		return e.Stats().WALLiveBytes < 16<<10
	})
	st := e.Stats()
	if st.WALShed != 0 {
		t.Fatalf("scheduler let the WAL reach the hard budget: %d sheds", st.WALShed)
	}
	if st.LastCheckpoint <= 0 {
		t.Fatal("LastCheckpoint duration should be recorded")
	}
}
