// Package engine implements the Demaq server: it executes a compiled
// application (internal/rule) against the message store, realizing the
// execution model of Sec. 3.1 — every unprocessed message is processed
// exactly once, in scheduler order, by evaluating all rules attached to its
// queue and to the slices it belongs to, collecting a pending update list,
// and applying it in one transaction. Execution is set-oriented
// (Config.BatchSize): workers claim same-queue batches and commit them as
// one unit, amortizing transaction, locking and WAL overhead across the
// batch; messages whose rules touch shared state run alone, failures
// bisect back to tuple-at-a-time semantics, and higher-priority arrivals
// preempt a running batch between messages. Error handling (Sec. 3.6),
// echo-queue timers (Sec. 2.1.3), gateway communication (Sec. 4.2) and
// retention-based garbage collection (Sec. 2.3.3) run as engine services.
package engine

import (
	"fmt"
	"io/fs"
	"log/slog"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"testing/fstest"
	"time"

	"demaq/internal/gateway"
	"demaq/internal/msgstore"
	"demaq/internal/qdl"
	"demaq/internal/rule"
	"demaq/internal/schema"
	"demaq/internal/slicing"
	"demaq/internal/store"
	locks "demaq/internal/txn"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

// LockGranularity selects the logical locking scheme (experiment E2).
type LockGranularity uint8

// Lock granularities.
const (
	// LockSlice locks individual slices and messages under queue
	// intention locks — the paper's recommendation (Sec. 4.3).
	LockSlice LockGranularity = iota
	// LockQueue locks whole queues, the coarse baseline.
	LockQueue
)

// Config configures an engine.
type Config struct {
	// Dir is the data directory.
	Dir string
	// Workers is the number of message-processing workers (default 4).
	Workers int
	// Granularity selects slice- or queue-level locking.
	Granularity LockGranularity
	// Store configures the message store. Store.CacheDocs sizes the
	// document cache (zero = 4096): it bounds how many rehydrated message
	// trees stay resident, and cold misses pay one structural decode per
	// document. A zero Store.Store takes full page-store defaults; any
	// non-zero field means the caller owns the whole page-store
	// configuration and it is used verbatim.
	Store msgstore.Options
	// Rules configures the rule compiler.
	Rules rule.Options
	// Materialized selects the slice index implementation (E1).
	Materialized *bool
	// BatchSize caps how many messages a worker claims, evaluates and
	// commits as one set-oriented unit (default DefaultBatchSize). The
	// batch shares one transaction ID, one home-queue lock round and one
	// message-store commit — one WAL cohort instead of one per message.
	// 1 selects the exact tuple-at-a-time legacy path. On deadlock or
	// rule error the batch is bisected down to single messages, whose
	// retry and error-queue semantics are the reference.
	BatchSize int
	// GCInterval runs the retention garbage collector periodically;
	// zero disables the background task (CollectGarbage can be called
	// manually).
	GCInterval time.Duration
	// MaxRetries bounds deadlock retries per message (default 32).
	MaxRetries int
	// Logger receives engine diagnostics (default slog.Default).
	Logger *slog.Logger
	// Resources resolves files referenced by the application: WSDL
	// interfaces, policy files, schema files (default: empty).
	Resources fs.FS
	// Transports carries the gateway transports, keyed by scheme.
	Transports *gateway.Registry
	// FullIngest disables the streaming ingest path (experiment E16
	// baseline): wire XML is always parsed into a DOM tree and re-encoded,
	// and no per-queue path projection is applied.
	FullIngest bool
	// ScanDispatch restores the per-message dispatch baseline (experiment
	// E17): every claimed message's document is fetched eagerly and
	// property prefilters are checked one message at a time against the
	// property map, never through secondary-index probes. The default
	// (false) resolves a batch's prefilters with index range scans over
	// the claimed id window and defers each document fetch until a rule is
	// actually selected for that message — at deep backlogs most messages
	// are dispatched away without ever decoding their payloads.
	ScanDispatch bool
	// MaxBacklog bounds the scheduler backlog admission control tolerates:
	// when more unprocessed messages are waiting, ingest is shed with
	// ErrOverloaded (HTTP: 429 Retry-After) instead of growing the backlog
	// without bound. Zero disables the bound. Shedding is deterministic —
	// purely a function of the backlog size at admission, no sampling.
	MaxBacklog int
	// CheckpointInterval is the time trigger of the fuzzy checkpoint
	// scheduler: a checkpoint runs at least this often while the engine is
	// up, bounding replay after a crash even on an idle node. Zero disables
	// the time trigger; the scheduler still starts when the store has a WAL
	// soft budget (Store.Store.WALSoftBudget / WALHardBudget), checkpointing
	// whenever the live WAL outgrows it or too many buffered pages are
	// dirty. Checkpoints are fuzzy — commits keep flowing while they run.
	CheckpointInterval time.Duration
	// NoDurableSessions disables persisting reliable-messaging session
	// state (receive dedup windows, send sequence reservations) in the
	// message store. Exactly-once across a whole-node crash-restart then no
	// longer holds — retransmitted transfers admitted before the crash can
	// be re-admitted after it. Benchmark knob (experiment E18 baseline).
	NoDurableSessions bool
}

// DefaultBatchSize is the tuned default for Config.BatchSize.
const DefaultBatchSize = 32

// Stats are engine counters.
type Stats struct {
	Processed      uint64
	RulesEvaluated uint64
	RulesFired     uint64 // produced at least one update
	Enqueued       uint64
	Resets         uint64
	Errors         uint64
	Deadlocks      uint64
	Collected      uint64
	Backlog        int

	// Degraded is set after a permanent storage failure: the engine keeps
	// serving reads but refuses ingest (gateways shed with 503) and
	// workers park their claims instead of routing them to error queues.
	// StorageError carries the failure that tripped it.
	Degraded     bool
	StorageError string

	// IngestShed counts enqueues refused with ErrOverloaded because the
	// scheduler backlog was at Config.MaxBacklog.
	IngestShed uint64

	// BatchesClaimed counts scheduler claim rounds; AvgBatchSize is the
	// mean number of messages claimed per round (set-oriented execution
	// amortizes per-message overhead by this factor). DeadlockRequeues
	// counts messages handed back to the scheduler after exhausting
	// their deadlock retry budget instead of being routed to an error
	// queue — nothing is wrong with such a message, only with the timing.
	BatchesClaimed   uint64
	AvgBatchSize     float64
	DeadlockRequeues uint64

	// IngestBytesPooled counts wire bytes read through pooled gateway
	// receive buffers (the streaming ingest path copies what it keeps, so
	// the transport can recycle its read buffer immediately).
	IngestBytesPooled uint64

	// Storage health, from the page store. WALLiveBytes is the log volume
	// the next recovery would replay through (what the WAL budgets bound);
	// WALSegments is how many segment files hold it. DirtyPages counts
	// buffered pages not yet written back. Checkpoints counts completed
	// fuzzy checkpoints; WALThrottles counts commits delayed by the
	// soft-budget ramp; WALShed counts enqueues refused because the live
	// WAL reached the hard budget. LastCheckpoint/LastRecovery are the
	// durations of the most recent checkpoint and recovery, and
	// RecoveryReplayed is how many log records that recovery replayed —
	// the bounded-recovery metric.
	WALLiveBytes     uint64
	WALSegments      int
	DirtyPages       int
	Checkpoints      uint64
	WALThrottles     uint64
	WALShed          uint64
	LastCheckpoint   time.Duration
	LastRecovery     time.Duration
	RecoveryReplayed uint64
}

// Engine is a running Demaq server instance.
type Engine struct {
	cfg    Config
	log    *slog.Logger
	ms     *msgstore.Store
	prog   *rule.Program
	slices *slicing.Manager
	lm     *locks.LockManager
	sched  *scheduler
	timers *timerService
	gws    *gatewayService

	txnSeq atomic.Uint64

	// decls indexes the application's queue declarations by name; queue
	// kind and schema lookups sit on the per-message hot path.
	decls map[string]*qdl.QueueDecl

	// projs holds the static per-queue path projections derived from the
	// compiled program (nil entry / missing key = full ingest for that
	// queue). Like prog it is replaced only by Reload on an idle engine.
	projs map[string]*xmldom.Projection

	stats struct {
		processed, rulesEval, rulesFired, enqueued, resets, errors, deadlocks, collected atomic.Uint64
		batches, batchMsgs, deadlockRequeues, ingestShed, walShed                        atomic.Uint64
	}

	// degraded flips (one-way, until restart) when the store reports a
	// permanent I/O failure; storageErr holds the error that tripped it.
	degraded   atomic.Bool
	storageErr atomic.Value // error

	// closing flips when Shutdown begins: admission refuses new ingest
	// (ErrShutdown) while in-flight work drains.
	closing atomic.Bool

	schemas map[string]*schema.Schema

	wg       sync.WaitGroup
	stopGC   chan struct{}
	stopCkpt chan struct{}
	started  bool
	mu       sync.Mutex
}

// validateSchema checks a message against the queue's declared schema,
// compiling it on first use. Schemas whose declaration begins with '<' are
// inline documents; anything else is a file resolved via Config.Resources.
func (e *Engine) validateSchema(decl *qdl.QueueDecl, doc *xmldom.Node) error {
	e.mu.Lock()
	if e.schemas == nil {
		e.schemas = map[string]*schema.Schema{}
	}
	s, ok := e.schemas[decl.Name]
	e.mu.Unlock()
	if !ok {
		src := decl.Schema
		if !strings.HasPrefix(strings.TrimSpace(src), "<") {
			data, err := fs.ReadFile(e.cfg.Resources, src)
			if err != nil {
				return fmt.Errorf("engine: schema of queue %q: %w", decl.Name, err)
			}
			src = string(data)
		}
		var err error
		s, err = schema.Parse(src)
		if err != nil {
			return fmt.Errorf("engine: schema of queue %q: %w", decl.Name, err)
		}
		e.mu.Lock()
		e.schemas[decl.Name] = s
		e.mu.Unlock()
	}
	return s.Validate(doc)
}

// New opens the store and deploys the application program.
func New(cfg Config, app *qdl.Application) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 32
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	// Store defaulting: each knob defaults independently, and the nested
	// page-store options default only when fully zero — a caller that sets
	// any page-store field (a buffer size, a durability choice) owns the
	// whole struct and is taken verbatim, never silently overridden.
	if cfg.Store.Store == (store.Options{}) {
		cfg.Store.Store = store.DefaultOptions()
	}
	if cfg.Store.CacheDocs == 0 {
		cfg.Store.CacheDocs = msgstore.DefaultOptions().CacheDocs
	}
	if cfg.Resources == nil {
		cfg.Resources = fstest.MapFS{}
	}
	if cfg.Transports == nil {
		cfg.Transports = gateway.NewRegistry()
	}
	prog, err := rule.Compile(app, cfg.Rules)
	if err != nil {
		return nil, err
	}
	// Rules on echo and outgoing gateway queues would race with the
	// engine-internal consumers of those queues; reject them early.
	for _, q := range app.Queues {
		if q.Kind == qdl.KindEcho || q.Kind == qdl.KindOutgoingGateway {
			if plan := prog.QueuePlans[q.Name]; plan != nil && len(plan.Rules) > 0 {
				return nil, fmt.Errorf("engine: rules cannot be attached to %s queue %q", q.Kind, q.Name)
			}
		}
	}

	ms, err := msgstore.Open(cfg.Dir, cfg.Store)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:   cfg,
		log:   cfg.Logger,
		ms:    ms,
		prog:  prog,
		lm:    locks.NewLockManager(),
		sched: newScheduler(),
		decls: make(map[string]*qdl.QueueDecl, len(app.Queues)),
	}
	for _, q := range app.Queues {
		e.decls[q.Name] = q
	}
	e.projs = e.computeProjections(prog, app)
	materialized := true
	if cfg.Materialized != nil {
		materialized = *cfg.Materialized
	}
	e.slices = slicing.NewManager(ms, prog.Properties, materialized)
	for name, propName := range prog.SlicingProps {
		e.slices.Define(name, propName)
	}

	// Declare queues and collections.
	for _, q := range app.Queues {
		mode := msgstore.Persistent
		if !q.Persistent {
			mode = msgstore.Transient
		}
		if _, err := ms.CreateQueue(q.Name, mode, q.Priority); err != nil {
			ms.Close()
			return nil, err
		}
		e.sched.DeclareQueue(q.Name, q.Priority)
	}
	for _, c := range app.Collections {
		if err := ms.CreateCollection(c.Name); err != nil {
			ms.Close()
			return nil, err
		}
	}

	// Rebuild derived state: slice memberships, reset watermarks,
	// scheduler backlog, pending timers.
	if err := e.slices.Rebuild(); err != nil {
		ms.Close()
		return nil, err
	}
	events, err := ms.ResetEvents()
	if err != nil {
		ms.Close()
		return nil, err
	}
	for _, ev := range events {
		e.slices.Reset(ev.Slicing, ev.Key, msgstore.MsgID(ev.Watermark))
	}
	e.timers = newTimerService(e)
	e.gws = newGatewayService(e)
	for _, q := range app.Queues {
		switch q.Kind {
		case qdl.KindEcho:
			for _, id := range ms.UnprocessedIDs(q.Name) {
				e.timers.schedule(q.Name, id)
			}
		case qdl.KindOutgoingGateway:
			e.gws.declareOutgoing(q)
			for _, id := range ms.UnprocessedIDs(q.Name) {
				e.gws.submit(q.Name, id)
			}
		case qdl.KindIncomingGateway:
			e.gws.declareIncoming(q)
			for _, id := range ms.UnprocessedIDs(q.Name) {
				e.sched.Add(q.Name, id)
			}
		default:
			for _, id := range ms.UnprocessedIDs(q.Name) {
				e.sched.Add(q.Name, id)
			}
		}
	}
	return e, nil
}

// computeProjections derives the per-queue path projections used by the
// streaming ingest path. Only queues whose payloads take the streaming
// encoder qualify: basic and incoming-gateway kinds (echo and outgoing
// queues are consumed by engine services that read whole documents),
// persistent mode (transient messages live only as their cached tree,
// which must be complete), and no schema (validation walks the whole
// document, so projection would force an immediate full decode). A nil
// projection from the analysis (imprecise rules, `//` descents, or a
// union that covers the document anyway) simply leaves the queue out.
func (e *Engine) computeProjections(prog *rule.Program, app *qdl.Application) map[string]*xmldom.Projection {
	if e.cfg.FullIngest || e.cfg.Store.TextPayloads {
		return nil
	}
	projs := map[string]*xmldom.Projection{}
	for _, q := range app.Queues {
		if q.Kind != qdl.KindBasic && q.Kind != qdl.KindIncomingGateway {
			continue
		}
		if !q.Persistent || q.Schema != "" {
			continue
		}
		if p := prog.QueueProjection(q.Name); p != nil {
			projs[q.Name] = p
		}
	}
	return projs
}

// projFP returns the projection fingerprint of a queue, or 0 when the
// queue ingests full documents.
func (e *Engine) projFP(queue string) uint64 {
	if p := e.projs[queue]; p != nil {
		return p.Fingerprint()
	}
	return 0
}

// Projection exposes the active path projection of a queue (nil = full
// ingest). Introspection and tests.
func (e *Engine) Projection(queue string) *xmldom.Projection { return e.projs[queue] }

// Program exposes the compiled application.
func (e *Engine) Program() *rule.Program { return e.prog }

// MessageStore exposes the message store (introspection, tests).
func (e *Engine) MessageStore() *msgstore.Store { return e.ms }

// Slices exposes the slicing manager.
func (e *Engine) Slices() *slicing.Manager { return e.slices }

// Gateways exposes the communication subsystem.
func (e *Engine) Gateways() *gatewayService { return e.gws }

// Start launches the worker pool and background services.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker(uint64(i))
	}
	e.timers.start()
	e.gws.start()
	if e.cfg.GCInterval > 0 {
		e.stopGC = make(chan struct{})
		e.wg.Add(1)
		go e.gcLoop()
	}
	if e.cfg.CheckpointInterval > 0 || e.cfg.Store.Store.WALSoftBudget > 0 || e.cfg.Store.Store.WALHardBudget > 0 {
		e.stopCkpt = make(chan struct{})
		e.wg.Add(1)
		go e.checkpointLoop()
	}
}

// Stop shuts the engine down and closes the store.
func (e *Engine) Stop() error {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return e.ms.Close()
	}
	e.started = false
	e.mu.Unlock()
	e.sched.Close()
	e.timers.shutdown()
	e.gws.stop()
	if e.stopGC != nil {
		close(e.stopGC)
	}
	if e.stopCkpt != nil {
		close(e.stopCkpt)
	}
	e.wg.Wait()
	// ms.Close runs a final quiescent checkpoint: a clean shutdown leaves
	// nothing for the next Open to replay.
	return e.ms.Close()
}

// Drain blocks until the scheduler has no pending or in-flight work, or the
// timeout elapses. Timers that have not fired and in-flight gateway
// transfers are not waited for.
func (e *Engine) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if e.sched.Idle() && e.gws.idle() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return e.sched.Idle() && e.gws.idle()
}

// Shutdown stops the engine gracefully: admission is closed first
// (ErrShutdown), incoming gateway endpoints are unsubscribed so no new
// transfer is acknowledged after close begins, in-flight batches and
// outgoing transfers get up to drainTimeout to finish, and only then is
// the store closed (flushing the WAL). It returns whether the drain
// completed — on false, whatever was still in flight stays unprocessed in
// its persistent queue and resumes on the next start, exactly as after a
// crash.
func (e *Engine) Shutdown(drainTimeout time.Duration) (drained bool, err error) {
	e.closing.Store(true)
	e.gws.stopIncoming()
	drained = e.Drain(drainTimeout)
	return drained, e.Stop()
}

// ErrDegraded is returned by the ingest APIs while the engine is in
// degraded read-only mode after a permanent storage failure. It wraps
// gateway.ErrUnavailable, so transports shed the load (HTTP: 503 with
// Retry-After) instead of surfacing it as a message fault.
var ErrDegraded = fmt.Errorf("engine: degraded read-only mode after storage failure: %w", gateway.ErrUnavailable)

// ErrShutdown is returned by the ingest APIs once Shutdown has begun. It
// wraps gateway.ErrUnavailable (HTTP: 503) — from a sender's point of view
// a node draining for shutdown is about to be gone.
var ErrShutdown = fmt.Errorf("engine: shutting down: %w", gateway.ErrUnavailable)

// ErrOverloaded is returned by the ingest APIs when the scheduler backlog
// is at Config.MaxBacklog. It wraps gateway.ErrOverloaded (HTTP: 429 with
// Retry-After), the transient-overload verdict distinct from the degraded
// and shutting-down 503s: the node is healthy, retry the same request.
var ErrOverloaded = fmt.Errorf("engine: ingest backlog full: %w", gateway.ErrOverloaded)

// admitIngest is the admission decision at the top of every external
// enqueue, in verdict order: a degraded node refuses everything, a
// draining node refuses new work, and a healthy node sheds only when the
// backlog bound or the WAL hard budget is hit. The WAL check is the last
// line of the graceful-degradation ramp: past the soft budget commits are
// already throttled in the store; if the live log still reaches the hard
// budget, new work is refused (429, retryable) until the checkpointer
// advances the head — the WAL never grows without bound.
func (e *Engine) admitIngest() error {
	if e.degraded.Load() {
		return ErrDegraded
	}
	if e.closing.Load() {
		return ErrShutdown
	}
	if max := e.cfg.MaxBacklog; max > 0 && e.sched.Backlog() >= max {
		e.stats.ingestShed.Add(1)
		return ErrOverloaded
	}
	if hard := e.cfg.Store.Store.WALHardBudget; hard > 0 && int64(e.ms.PageStore().LiveLogBytes()) >= hard {
		e.stats.walShed.Add(1)
		return ErrOverloaded
	}
	return nil
}

// noteStorageError inspects an error from the storage layer and flips the
// engine into degraded read-only mode when it is permanent — a dead or
// full device, or a sticky WAL failure the store already latched.
// Transient errors were retried below and never reach this point as
// failures; everything else is message-level, not device-level.
func (e *Engine) noteStorageError(err error) {
	if err == nil {
		return
	}
	if !store.IsPermanent(err) && e.ms.DiskError() == nil {
		return
	}
	if e.degraded.CompareAndSwap(false, true) {
		e.storageErr.Store(err)
		e.log.Error("permanent storage failure: entering degraded read-only mode", "err", err)
	}
}

// Degraded reports whether the engine is in degraded read-only mode.
func (e *Engine) Degraded() bool { return e.degraded.Load() }

// StorageError returns the failure that tripped degraded mode, if any.
func (e *Engine) StorageError() error {
	err, _ := e.storageErr.Load().(error)
	return err
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Processed:        e.stats.processed.Load(),
		RulesEvaluated:   e.stats.rulesEval.Load(),
		RulesFired:       e.stats.rulesFired.Load(),
		Enqueued:         e.stats.enqueued.Load(),
		Resets:           e.stats.resets.Load(),
		Errors:           e.stats.errors.Load(),
		Deadlocks:        e.stats.deadlocks.Load(),
		Collected:        e.stats.collected.Load(),
		Backlog:          e.sched.Backlog(),
		BatchesClaimed:   e.stats.batches.Load(),
		DeadlockRequeues: e.stats.deadlockRequeues.Load(),
		IngestShed:       e.stats.ingestShed.Load(),
	}
	if st.BatchesClaimed > 0 {
		st.AvgBatchSize = float64(e.stats.batchMsgs.Load()) / float64(st.BatchesClaimed)
	}
	st.IngestBytesPooled = e.cfg.Transports.IngestBytesPooled()
	ps := e.ms.PageStore().Stats()
	st.WALLiveBytes = ps.WALLiveBytes
	st.WALSegments = ps.WALSegments
	st.DirtyPages = ps.DirtyPages
	st.Checkpoints = ps.Checkpoints
	st.WALThrottles = ps.WALThrottles
	st.WALShed = e.stats.walShed.Load()
	st.LastCheckpoint = ps.LastCheckpointDuration
	st.LastRecovery = ps.LastRecoveryDuration
	st.RecoveryReplayed = ps.RecoveryRecordsReplayed
	st.Degraded = e.degraded.Load()
	if err := e.StorageError(); err != nil {
		st.StorageError = err.Error()
	}
	return st
}

// CollectGarbage runs one retention GC pass (Sec. 2.3.3).
func (e *Engine) CollectGarbage() (int, error) {
	if e.degraded.Load() {
		return 0, ErrDegraded
	}
	n, err := e.slices.CollectGarbage()
	e.stats.collected.Add(uint64(n))
	e.noteStorageError(err)
	return n, err
}

// checkpointLoop is the fuzzy checkpoint scheduler. It polls the page
// store and checkpoints when any trigger fires: the live WAL outgrew the
// soft budget (the primary signal under load), too many buffered pages are
// dirty (bounds checkpoint write-back bursts), or CheckpointInterval
// elapsed since the last checkpoint (bounds replay on an idle node).
// Checkpoints are fuzzy: commits keep flowing while one runs, so the loop
// needs no coordination with the workers.
func (e *Engine) checkpointLoop() {
	defer e.wg.Done()
	soft := e.cfg.Store.Store.WALSoftBudget
	if hard := e.cfg.Store.Store.WALHardBudget; soft <= 0 && hard > 0 {
		soft = hard / 2
	}
	// A checkpoint rewrites every dirty page once; capping the dirty set
	// at half the buffer pool keeps each cycle's write-back burst small.
	dirtyTrigger := e.cfg.Store.Store.BufferPages / 2
	if dirtyTrigger <= 0 {
		dirtyTrigger = 512
	}
	poll := 200 * time.Millisecond
	if iv := e.cfg.CheckpointInterval; iv > 0 && iv < poll {
		poll = iv
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-e.stopCkpt:
			return
		case <-t.C:
			if e.degraded.Load() {
				continue
			}
			ps := e.ms.PageStore()
			due := soft > 0 && int64(ps.LiveLogBytes()) > soft
			if !due && dirtyTrigger > 0 {
				due = ps.Stats().DirtyPages >= dirtyTrigger
			}
			if !due && e.cfg.CheckpointInterval > 0 {
				due = time.Since(last) >= e.cfg.CheckpointInterval
			}
			if !due {
				continue
			}
			if err := ps.Checkpoint(); err != nil {
				e.noteStorageError(err)
				e.log.Error("checkpoint failed", "err", err)
				continue
			}
			last = time.Now()
		}
	}
}

func (e *Engine) gcLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stopGC:
			return
		case <-t.C:
			if _, err := e.CollectGarbage(); err != nil {
				e.log.Error("gc failed", "err", err)
			}
		}
	}
}

// Enqueue inserts an external message into a queue (the API used by
// gateways, clients and tests). Property expressions of the target queue
// are evaluated; explicit props (e.g. the Sender system property) may be
// supplied.
func (e *Engine) Enqueue(queue string, doc *xmldom.Node, explicit map[string]xdm.Value) (msgstore.MsgID, error) {
	return e.enqueueDoc(queue, doc, explicit, nil)
}

// enqueueDoc is Enqueue with an optional reliable-session snapshot staged
// into the same transaction: the transfer becoming durable and its
// retransmits becoming suppressible are then one atomic fact — the ack the
// gateway sends afterwards is never a lie, whichever side of the commit a
// crash lands on.
func (e *Engine) enqueueDoc(queue string, doc *xmldom.Node, explicit map[string]xdm.Value, sess *msgstore.SessionState) (msgstore.MsgID, error) {
	if err := e.admitIngest(); err != nil {
		return 0, err
	}
	q, ok := e.ms.Queue(queue)
	if !ok {
		return 0, fmt.Errorf("engine: unknown queue %q", queue)
	}
	if decl := e.queueDecl(queue); decl != nil && decl.Schema != "" {
		if err := e.validateSchema(decl, doc); err != nil {
			return 0, err
		}
	}
	now := time.Now().UTC()
	system := map[string]xdm.Value{}
	props, err := e.prog.Properties.Evaluate(queue, doc, explicit, nil, system, now)
	if err != nil {
		return 0, err
	}
	tx := e.ms.Begin()
	id, err := tx.Enqueue(queue, doc, props, now)
	if err != nil {
		tx.Abort()
		e.noteStorageError(err)
		return 0, err
	}
	if sess != nil {
		tx.PutSession(*sess)
	}
	if _, err := tx.Commit(); err != nil {
		e.noteStorageError(err)
		return 0, err
	}
	e.slices.OnEnqueue(id, queue, props)
	e.stats.enqueued.Add(1)
	e.routeNewMessage(q, id)
	return id, nil
}

// EnqueueWire inserts an external message arriving as wire XML. This is
// the streaming ingest path (experiment E16): the bytes are encoded
// straight into the binary payload format by a SAX-style pass — no
// intermediate DOM tree — and, when the queue has a static path
// projection, subtrees the queue's rules never read are carried through
// as opaque byte spans and skipped at decode time. The encoder copies
// everything it keeps, so the caller may reuse wire after the call.
//
// Queues that cannot stream — full-ingest or text-payload configuration,
// transient mode, a declared schema (validation walks the whole
// document), echo and outgoing-gateway kinds — transparently fall back to
// parse-and-enqueue with identical semantics and error surface.
func (e *Engine) EnqueueWire(queue string, wire []byte, explicit map[string]xdm.Value) (msgstore.MsgID, error) {
	return e.enqueueWire(queue, wire, explicit, nil)
}

// enqueueWire is EnqueueWire with an optional reliable-session snapshot
// staged into the enqueue transaction (see enqueueDoc).
func (e *Engine) enqueueWire(queue string, wire []byte, explicit map[string]xdm.Value, sess *msgstore.SessionState) (msgstore.MsgID, error) {
	if err := e.admitIngest(); err != nil {
		return 0, err
	}
	q, ok := e.ms.Queue(queue)
	if !ok {
		return 0, fmt.Errorf("engine: unknown queue %q", queue)
	}
	decl := e.queueDecl(queue)
	kind := e.queueKind(queue)
	if e.cfg.FullIngest || e.cfg.Store.TextPayloads ||
		q.Mode != msgstore.Persistent ||
		(decl != nil && decl.Schema != "") ||
		(kind != qdl.KindBasic && kind != qdl.KindIncomingGateway) {
		doc, err := xmldom.Parse(wire)
		if err != nil {
			return 0, err
		}
		return e.enqueueDoc(queue, doc, explicit, sess)
	}
	proj := e.projs[queue]
	enc, err := xmldom.StreamEncode(nil, wire, proj)
	if err != nil {
		return 0, err
	}
	// Decode the encoding we just produced: the partial (projected) tree
	// when a projection applied, the complete tree otherwise. It seeds the
	// doc cache and is sufficient for property evaluation — the projection
	// includes every path the queue's property expressions read. The
	// decoded strings alias enc, which is why enc is freshly allocated
	// here and never pooled.
	var (
		doc    *xmldom.Node
		fp     uint64
		pruned []string
	)
	if proj != nil {
		doc, fp, pruned, err = xmldom.DecodeProjectedOwned(enc)
		if err == nil && len(pruned) == 0 {
			// Nothing was actually pruned: the tree is complete, cache and
			// read it as such.
			fp = 0
		}
	} else {
		doc, err = xmldom.DecodeOwned(enc)
	}
	if err != nil {
		return 0, fmt.Errorf("engine: streaming ingest self-decode: %w", err)
	}
	now := time.Now().UTC()
	system := map[string]xdm.Value{}
	props, err := e.prog.Properties.Evaluate(queue, doc, explicit, nil, system, now)
	if err != nil {
		return 0, err
	}
	tx := e.ms.Begin()
	id, err := tx.EnqueueEncoded(queue, enc, doc, fp, pruned, props, now)
	if err != nil {
		tx.Abort()
		e.noteStorageError(err)
		return 0, err
	}
	if sess != nil {
		tx.PutSession(*sess)
	}
	if _, err := tx.Commit(); err != nil {
		e.noteStorageError(err)
		return 0, err
	}
	e.slices.OnEnqueue(id, queue, props)
	e.stats.enqueued.Add(1)
	e.routeNewMessage(q, id)
	return id, nil
}

// EnqueueXML enqueues wire XML given as a string.
func (e *Engine) EnqueueXML(queue, xml string, explicit map[string]xdm.Value) (msgstore.MsgID, error) {
	return e.EnqueueWire(queue, []byte(xml), explicit)
}

// routeNewMessage hands a committed message to its consumer: the rule
// scheduler, the timer service (echo queues) or the gateway sender.
func (e *Engine) routeNewMessage(q *msgstore.Queue, id msgstore.MsgID) {
	kind := e.queueKind(q.Name)
	switch kind {
	case qdl.KindEcho:
		e.timers.schedule(q.Name, id)
	case qdl.KindOutgoingGateway:
		e.gws.submit(q.Name, id)
	default:
		e.sched.Add(q.Name, id)
	}
}

func (e *Engine) queueKind(name string) qdl.QueueKind {
	if q := e.decls[name]; q != nil {
		return q.Kind
	}
	return qdl.KindBasic
}

func (e *Engine) queueDecl(name string) *qdl.QueueDecl {
	return e.decls[name]
}

// worker is the message-processing loop. With BatchSize 1 every message is
// claimed and committed individually (the tuple-at-a-time legacy path);
// otherwise the worker claims same-queue batches and processes them
// set-oriented, falling back to single messages on failure.
func (e *Engine) worker(seq uint64) {
	defer e.wg.Done()
	// Per-worker PRNG for backoff jitter: colliding workers must not
	// retry in lockstep, and the global rand would be a contention point.
	rng := rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), seq))
	if e.cfg.BatchSize <= 1 {
		for {
			queue, id, ok := e.sched.Claim()
			if !ok {
				return
			}
			e.stats.batches.Add(1)
			e.stats.batchMsgs.Add(1)
			e.processWithRetry(queue, id, rng)
		}
	}
	buf := make([]msgstore.MsgID, 0, e.cfg.BatchSize)
	for {
		queue, prio, ids, ok := e.sched.ClaimBatch(e.cfg.BatchSize, buf[:0])
		if !ok {
			return
		}
		buf = ids
		e.stats.batches.Add(1)
		e.stats.batchMsgs.Add(uint64(len(ids)))
		e.runBatch(queue, prio, ids, rng)
	}
}

func (e *Engine) processWithRetry(queue string, id msgstore.MsgID, rng *rand.Rand) {
	backoff := time.Microsecond * 50
	for attempt := 0; ; attempt++ {
		err := e.processMessage(queue, id)
		if err == nil {
			e.sched.Done()
			return
		}
		if err == locks.ErrDeadlock {
			e.stats.deadlocks.Add(1)
			if attempt >= e.cfg.MaxRetries {
				// Retry budget exhausted: nothing is wrong with the
				// message itself, only with the timing — hand it back to
				// the scheduler instead of poisoning an error queue.
				e.stats.deadlockRequeues.Add(1)
				e.sched.Requeue(queue, id)
				return
			}
			// Jittered exponential backoff: a deterministic schedule
			// would march the colliding workers into the same conflict
			// again.
			time.Sleep(backoff + time.Duration(rng.Int64N(int64(backoff))))
			if backoff < 10*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		// A permanent storage failure is a device fault, not a message
		// fault: park the message back on the scheduler (it stays
		// unprocessed and will be retried after a restart on a healthy
		// disk) and flip to degraded mode. Routing to the error queue
		// would both misattribute the failure and need the same dead
		// disk to commit.
		if store.IsPermanent(err) || e.degraded.Load() {
			e.noteStorageError(err)
			e.sched.Requeue(queue, id)
			time.Sleep(10 * time.Millisecond) // don't spin against a dead device
			return
		}
		// Non-retryable: route to the error queue and consume the message
		// so it is processed exactly once.
		e.handleRuleError(queue, id, err)
		e.sched.Done()
		return
	}
}

// runBatch processes a claimed batch, bisecting on failure: a batch that
// deadlocks or contains a rule error is split in half and retried, so the
// failure converges onto single-message processing — whose retry and
// error-queue semantics are the reference — while the healthy majority of
// the batch still commits set-oriented. Healthy members of a failing
// batch are re-evaluated once per split level; RulesEvaluated/RulesFired
// count evaluations performed, so they run higher on such workloads —
// exactly as the legacy path's deadlock retries already re-count.
func (e *Engine) runBatch(queue string, prio int, ids []msgstore.MsgID, rng *rand.Rand) {
	if len(ids) == 0 {
		return
	}
	if len(ids) == 1 {
		e.processWithRetry(queue, ids[0], rng)
		return
	}
	attempted, err := e.processBatch(queue, prio, ids)
	if err == nil {
		e.sched.DoneN(len(attempted))
		return
	}
	if err == locks.ErrDeadlock {
		e.stats.deadlocks.Add(1)
	}
	mid := len(attempted) / 2
	e.runBatch(queue, prio, attempted[:mid], rng)
	e.runBatch(queue, prio, attempted[mid:], rng)
}

// docFetcher returns a memoized projected-document fetch for one message.
// evalMessage calls it only when dispatch actually selects a rule (or needs
// element names for a trigger), so a message every rule is dispatched away
// from never decodes its payload; the first caller pays the decode, later
// callers in the same transaction get the cached result.
func (e *Engine) docFetcher(queue string, id msgstore.MsgID) func() (*xmldom.Node, []string, error) {
	var (
		doc    *xmldom.Node
		pruned []string
		err    error
		done   bool
	)
	return func() (*xmldom.Node, []string, error) {
		if !done {
			doc, pruned, err = e.ms.DocProjected(id, e.projFP(queue))
			done = true
		}
		return doc, pruned, err
	}
}

// probeMasks resolves the queue plan's property prefilters for a whole
// claimed batch through the message store's secondary index: one (property,
// value) range scan over the batch's id window per planner probe, instead
// of per-message map checks. Bit r of masks[i] set means ids[i] provably
// satisfies every predicate of plan.Rules[r]; an unset bit falls back to
// the per-message check inside SelectIndexed (the posting may be absent
// because the property is absent, which admits the rule — or because the
// posting raced the commit publish, where propMatch stays authoritative).
// Returns nil when the plan, the store, or the configuration rules probing
// out.
func (e *Engine) probeMasks(queue string, ids []msgstore.MsgID) []uint64 {
	if e.cfg.ScanDispatch || len(ids) < 2 {
		return nil
	}
	plan := e.prog.QueuePlans[queue]
	if plan == nil || !plan.IndexDispatchable() || !e.ms.PropertyIndexEnabled() {
		return nil
	}
	lo, hi := ids[0], ids[0]
	pos := make(map[msgstore.MsgID]int, len(ids))
	for i, id := range ids {
		if id < lo {
			lo = id
		}
		if id > hi {
			hi = id
		}
		pos[id] = i
	}
	probes := plan.IndexProbes()
	masks := make([]uint64, len(ids))
	hits := make([]int, len(ids))
	var hitBuf []msgstore.MsgID
	for i := 0; i < len(probes); {
		// Probes are grouped by rule; a multi-predicate rule needs every
		// posting list of the group to hit.
		j := i
		for j < len(probes) && probes[j].Rule == probes[i].Rule {
			j++
		}
		for k := range hits {
			hits[k] = 0
		}
		for _, pr := range probes[i:j] {
			hitBuf = e.ms.PropertyIDsRange(pr.Name, pr.Value, lo, hi, hitBuf[:0])
			for _, id := range hitBuf {
				if p, ok := pos[id]; ok {
					hits[p]++
				}
			}
		}
		bit := uint64(1) << uint(probes[i].Rule)
		for p, n := range hits {
			if n == j-i {
				masks[p] |= bit
			}
		}
		i = j
	}
	return masks
}

// processMessage runs the execution-model cycle for one message: evaluate
// all applicable rules (queue plan + slice plans), then apply the combined
// pending update list and the processed flag in a single transaction.
func (e *Engine) processMessage(queue string, id msgstore.MsgID) error {
	txnID := e.txnSeq.Add(1)
	defer e.lm.ReleaseAll(txnID)

	// Home-queue lock: coarse X, or IX + message X under slice locking.
	if e.cfg.Granularity == LockQueue {
		if err := e.lm.Acquire(txnID, locks.Resource("q", queue), locks.X); err != nil {
			return err
		}
	} else {
		if err := e.lm.Acquire(txnID, locks.Resource("q", queue), locks.IX); err != nil {
			return err
		}
		if err := e.lm.Acquire(txnID, locks.Resource("m", fmt.Sprint(id)), locks.X); err != nil {
			return err
		}
	}

	msg, ok := e.ms.Get(id)
	if !ok {
		return fmt.Errorf("engine: message %d vanished", id)
	}
	if msg.Processed {
		return nil // duplicate schedule after crash recovery
	}
	fetch := e.docFetcher(queue, id)
	if e.cfg.ScanDispatch {
		if _, _, err := fetch(); err != nil {
			return err
		}
	}
	now := time.Now().UTC()
	rt := &evalRuntime{eng: e, txnID: txnID, queue: queue, now: now}
	combined, ruleName, _, failed, err := e.evalMessage(rt, txnID, queue, id, fetch, msg.Props, 0, false, false)
	if err != nil {
		return err
	}
	if failed != nil {
		// Error path: the message still counts as processed (Sec. 3.6);
		// the error becomes a message in the appropriate error queue.
		if err := e.applyUpdates(txnID, id, queue, msg.Props, &xquery.UpdateList{}, now, ""); err != nil {
			return err
		}
		// The error message embeds the original document: use the complete
		// tree, never a projected view of it. fetch is memoized — the
		// failing rule already evaluated on the document.
		doc, pruned, _ := fetch()
		errDoc := doc
		if len(pruned) > 0 {
			if full, derr := e.ms.Doc(id); derr == nil {
				errDoc = full
			}
		}
		e.emitError(queue, id, errDoc, failed.rule, failed.err)
		e.stats.processed.Add(1)
		return nil
	}
	if err := e.applyUpdates(txnID, id, queue, msg.Props, combined, now, ruleName); err != nil {
		return err
	}
	e.stats.processed.Add(1)
	return nil
}

// processBatch runs the execution-model cycle for a whole same-queue batch
// under one transaction ID: one home-queue lock round, per-message rule
// evaluation through a single reused evalRuntime into per-message pending
// update lists, and one combined message-store transaction that marks
// every message processed and performs every enqueue and reset — one
// prepare/persist/publish cycle and one WAL commit cohort instead of
// len(ids). Between messages the worker polls the scheduler: if work of
// strictly higher priority became runnable, the evaluated prefix commits
// and the rest of the batch is requeued in order.
//
// Any failure — deadlock or rule error — aborts the batch with no effects
// applied (the transaction never commits, all locks are released) and is
// reported to the caller, which bisects down to the single-message path.
// It returns the prefix of ids it was responsible for (the remainder, if
// any, was requeued after preemption).
func (e *Engine) processBatch(queue string, prio int, ids []msgstore.MsgID) (attempted []msgstore.MsgID, err error) {
	txnID := e.txnSeq.Add(1)
	defer e.lm.ReleaseAll(txnID)

	attempted = ids
	// Home-queue lock: one round for the whole batch.
	if e.cfg.Granularity == LockQueue {
		if err := e.lm.Acquire(txnID, locks.Resource("q", queue), locks.X); err != nil {
			return attempted, err
		}
	} else {
		if err := e.lm.Acquire(txnID, locks.Resource("q", queue), locks.IX); err != nil {
			return attempted, err
		}
	}

	now := time.Now().UTC()
	rt := &evalRuntime{eng: e, txnID: txnID, queue: queue, now: now}
	masks := e.probeMasks(queue, ids)
	items := make([]batchItem, 0, len(ids))
	for i, id := range ids {
		if i > 0 && e.sched.PreemptFor(prio) {
			// Higher-priority work arrived: commit what is evaluated and
			// give the rest back, preserving order.
			e.sched.RequeueFront(queue, ids[i:])
			attempted = ids[:i]
			break
		}
		msg, ok := e.ms.Get(id)
		if !ok {
			return attempted, fmt.Errorf("engine: message %d vanished", id)
		}
		if msg.Processed {
			continue // duplicate schedule after crash recovery
		}
		fetch := e.docFetcher(queue, id)
		if e.cfg.ScanDispatch {
			if _, _, err := fetch(); err != nil {
				return attempted, err
			}
		}
		var mask uint64
		if masks != nil {
			mask = masks[i]
		}
		combined, ruleName, shared, failed, err := e.evalMessage(rt, txnID, queue, id, fetch, msg.Props, mask, len(items) > 0, true)
		if err == errNotBatchable {
			// This message's rules read or mutate shared state and
			// updates from earlier batch members are already pending:
			// commit the prefix, give the rest back in order. The message
			// re-runs later at the head of its own transaction.
			e.sched.RequeueFront(queue, ids[i:])
			attempted = ids[:i]
			break
		}
		if err != nil {
			return attempted, err
		}
		if failed != nil {
			// Per-message error-queue semantics belong to the
			// single-message path: fail the batch so bisection isolates
			// the message.
			return attempted, failed.err
		}
		// Re-check the processed flag now that evalMessage holds the
		// message lock: the pre-lock snapshot above can race a duplicate
		// schedule of the same ID (the legacy path reads the flag with
		// the lock already held). False under the lock is final — any
		// other processor must take this lock to commit the flag.
		if cur, ok := e.ms.Get(id); !ok || cur.Processed {
			continue
		}
		dup := false
		for _, it := range items {
			if it.id == id {
				dup = true // duplicate schedule landed twice in one batch
				break
			}
		}
		if dup {
			continue
		}
		items = append(items, batchItem{id: id, props: msg.Props, updates: combined, ruleName: ruleName})
		if shared {
			// A shared-state message rides alone (it was first, so its
			// reads were live): close the batch behind it.
			if i+1 < len(ids) {
				e.sched.RequeueFront(queue, ids[i+1:])
				attempted = ids[:i+1]
			}
			break
		}
	}
	if len(items) == 0 {
		return attempted, nil
	}
	if err := e.applyBatch(txnID, queue, items, now); err != nil {
		return attempted, err
	}
	e.stats.processed.Add(uint64(len(items)))
	return attempted, nil
}

// errNotBatchable signals that a message's applicable rules touch shared
// state and therefore may not evaluate in the middle of a batch (whose
// earlier pending updates are not visible yet). The message is requeued
// and later runs at the head of its own transaction, where reads are live.
var errNotBatchable = fmt.Errorf("engine: message not batchable mid-batch")

// evalMessage evaluates every applicable rule of one message inside txnID
// — locking the message's slices first — and accumulates the pending
// updates. A rule failure comes back in failed (the per-message error
// path); deadlocks and system errors come back as err and abort the whole
// processing transaction. rt is reused across the messages of a batch; the
// per-message fields are reset here.
//
// shared reports whether any applicable rule observes or mutates shared
// state (qs:slice/qs:queue reads, resets): such a message must be the only
// one in its transaction to keep batch and tuple-at-a-time execution
// equivalent. With noShared set, a shared message is rejected with
// errNotBatchable before anything is locked or evaluated, so a requeued
// message is immediately claimable by another worker. With lockMsg set
// (the batch path; processMessage locks up front itself) the message's
// exclusive lock is acquired here, after that rejection point.
func (e *Engine) evalMessage(rt *evalRuntime, txnID uint64, queue string, id msgstore.MsgID, fetch func() (*xmldom.Node, []string, error), props map[string]xdm.Value, probeMask uint64, noShared, lockMsg bool) (combined *xquery.UpdateList, ruleName string, shared bool, failed *ruleError, err error) {
	// Element names are the dispatch key set: computed lazily, only when
	// some applicable rule actually has an element trigger — that is the
	// first point the document is needed at all; a message whose rules are
	// all dispatched away on properties is never fetched. A projected
	// document is missing the elements inside its pruned spans, so their
	// recorded names are merged back in — the prefilter must never reject
	// a rule the full document would have selected (over-approximating is
	// harmless: the rule body re-checks its condition).
	var namesMemo map[string]bool
	var fetchErr error
	elementNames := func() map[string]bool {
		if namesMemo == nil {
			doc, pruned, err := fetch()
			if err != nil {
				fetchErr = err
				return map[string]bool{}
			}
			namesMemo = rule.ElementNames(doc)
			for _, n := range pruned {
				namesMemo[n] = true
			}
		}
		return namesMemo
	}

	memberships := e.slices.SlicesOf(id)
	combined = &xquery.UpdateList{}
	type ruleCtx struct {
		r       *rule.Rule
		slicing string
		key     string
	}
	var toRun []ruleCtx
	if plan := e.prog.QueuePlans[queue]; plan != nil {
		// probeMask carries the batch index-probe results; 0 degrades
		// SelectIndexed to the plain per-message Select.
		for _, r := range plan.SelectIndexed(props, probeMask, elementNames) {
			toRun = append(toRun, ruleCtx{r: r})
		}
	}
	for _, mb := range memberships {
		if plan := e.prog.SlicePlans[mb.Slicing]; plan != nil {
			for _, r := range plan.Select(props, elementNames) {
				toRun = append(toRun, ruleCtx{r: r, slicing: mb.Slicing, key: mb.Key})
			}
		}
	}
	if fetchErr != nil {
		return nil, "", false, nil, fetchErr
	}
	for _, rc := range toRun {
		if rc.r.Body.SharedState() {
			shared = true
			break
		}
	}
	if shared && noShared {
		return nil, "", true, nil, errNotBatchable
	}
	if lockMsg && e.cfg.Granularity == LockSlice {
		if err := e.lm.Acquire(txnID, locks.Resource("m", fmt.Sprint(id)), locks.X); err != nil {
			return nil, "", shared, nil, err
		}
	}

	// Lock the slices of the message (they are read by slice rules and
	// advanced by resets).
	if e.cfg.Granularity == LockSlice {
		for _, mb := range memberships {
			if err := e.lm.Acquire(txnID, locks.Resource("sl", mb.Slicing, mb.Key), locks.X); err != nil {
				return nil, "", shared, nil, err
			}
		}
	}

	if len(toRun) == 0 {
		return combined, "", shared, nil, nil
	}
	doc, _, err := fetch()
	if err != nil {
		return nil, "", shared, nil, err
	}
	rt.msgID, rt.doc, rt.props = id, doc, props
	for _, rc := range toRun {
		rt.curSlicing, rt.curKey = rc.slicing, rc.key
		e.stats.rulesEval.Add(1)
		_, updates, evalErr := xquery.Eval(rc.r.Body, rt, xquery.EvalOptions{ContextDoc: doc})
		if evalErr != nil {
			if evalErr == locks.ErrDeadlock {
				return nil, "", shared, nil, evalErr
			}
			return nil, "", shared, &ruleError{rule: rc.r, err: evalErr}, nil
		}
		if updates.Len() > 0 {
			e.stats.rulesFired.Add(1)
		}
		for _, up := range updates.Updates {
			if r, isReset := up.(*xquery.ResetUpdate); isReset && r.Implicit {
				// Resolve the implicit reset against the rule's slice.
				if rc.slicing == "" {
					return nil, "", shared, &ruleError{rule: rc.r, err: fmt.Errorf("bare 'do reset' outside a slicing rule")}, nil
				}
				r.Slicing, r.Key = rc.slicing, xdm.NewString(rc.key)
			}
			combined.Append(up)
		}
	}
	ruleName = toRun[0].r.Name
	return combined, ruleName, shared, nil, nil
}

type ruleError struct {
	rule *rule.Rule
	err  error
}
