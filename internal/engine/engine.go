// Package engine implements the Demaq server: it executes a compiled
// application (internal/rule) against the message store, realizing the
// execution model of Sec. 3.1 — every unprocessed message is processed
// exactly once, in scheduler order, by evaluating all rules attached to its
// queue and to the slices it belongs to, collecting a pending update list,
// and applying it in one transaction. Error handling (Sec. 3.6), echo-queue
// timers (Sec. 2.1.3), gateway communication (Sec. 4.2) and retention-based
// garbage collection (Sec. 2.3.3) run as engine services.
package engine

import (
	"fmt"
	"io/fs"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"testing/fstest"
	"time"

	"demaq/internal/gateway"
	"demaq/internal/msgstore"
	"demaq/internal/qdl"
	"demaq/internal/rule"
	"demaq/internal/schema"
	"demaq/internal/slicing"
	"demaq/internal/store"
	locks "demaq/internal/txn"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

// LockGranularity selects the logical locking scheme (experiment E2).
type LockGranularity uint8

// Lock granularities.
const (
	// LockSlice locks individual slices and messages under queue
	// intention locks — the paper's recommendation (Sec. 4.3).
	LockSlice LockGranularity = iota
	// LockQueue locks whole queues, the coarse baseline.
	LockQueue
)

// Config configures an engine.
type Config struct {
	// Dir is the data directory.
	Dir string
	// Workers is the number of message-processing workers (default 4).
	Workers int
	// Granularity selects slice- or queue-level locking.
	Granularity LockGranularity
	// Store configures the message store. Store.CacheDocs sizes the
	// document cache (zero = 4096): it bounds how many rehydrated message
	// trees stay resident, and cold misses pay one structural decode per
	// document. A zero Store.Store takes full page-store defaults; any
	// non-zero field means the caller owns the whole page-store
	// configuration and it is used verbatim.
	Store msgstore.Options
	// Rules configures the rule compiler.
	Rules rule.Options
	// Materialized selects the slice index implementation (E1).
	Materialized *bool
	// GCInterval runs the retention garbage collector periodically;
	// zero disables the background task (CollectGarbage can be called
	// manually).
	GCInterval time.Duration
	// MaxRetries bounds deadlock retries per message (default 32).
	MaxRetries int
	// Logger receives engine diagnostics (default slog.Default).
	Logger *slog.Logger
	// Resources resolves files referenced by the application: WSDL
	// interfaces, policy files, schema files (default: empty).
	Resources fs.FS
	// Transports carries the gateway transports, keyed by scheme.
	Transports *gateway.Registry
}

// Stats are engine counters.
type Stats struct {
	Processed      uint64
	RulesEvaluated uint64
	RulesFired     uint64 // produced at least one update
	Enqueued       uint64
	Resets         uint64
	Errors         uint64
	Deadlocks      uint64
	Collected      uint64
	Backlog        int
}

// Engine is a running Demaq server instance.
type Engine struct {
	cfg    Config
	log    *slog.Logger
	ms     *msgstore.Store
	prog   *rule.Program
	slices *slicing.Manager
	lm     *locks.LockManager
	sched  *scheduler
	timers *timerService
	gws    *gatewayService

	txnSeq atomic.Uint64

	// decls indexes the application's queue declarations by name; queue
	// kind and schema lookups sit on the per-message hot path.
	decls map[string]*qdl.QueueDecl

	stats struct {
		processed, rulesEval, rulesFired, enqueued, resets, errors, deadlocks, collected atomic.Uint64
	}

	schemas map[string]*schema.Schema

	wg      sync.WaitGroup
	stopGC  chan struct{}
	started bool
	mu      sync.Mutex
}

// validateSchema checks a message against the queue's declared schema,
// compiling it on first use. Schemas whose declaration begins with '<' are
// inline documents; anything else is a file resolved via Config.Resources.
func (e *Engine) validateSchema(decl *qdl.QueueDecl, doc *xmldom.Node) error {
	e.mu.Lock()
	if e.schemas == nil {
		e.schemas = map[string]*schema.Schema{}
	}
	s, ok := e.schemas[decl.Name]
	e.mu.Unlock()
	if !ok {
		src := decl.Schema
		if !strings.HasPrefix(strings.TrimSpace(src), "<") {
			data, err := fs.ReadFile(e.cfg.Resources, src)
			if err != nil {
				return fmt.Errorf("engine: schema of queue %q: %w", decl.Name, err)
			}
			src = string(data)
		}
		var err error
		s, err = schema.Parse(src)
		if err != nil {
			return fmt.Errorf("engine: schema of queue %q: %w", decl.Name, err)
		}
		e.mu.Lock()
		e.schemas[decl.Name] = s
		e.mu.Unlock()
	}
	return s.Validate(doc)
}

// New opens the store and deploys the application program.
func New(cfg Config, app *qdl.Application) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 32
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	// Store defaulting: each knob defaults independently, and the nested
	// page-store options default only when fully zero — a caller that sets
	// any page-store field (a buffer size, a durability choice) owns the
	// whole struct and is taken verbatim, never silently overridden.
	if cfg.Store.Store == (store.Options{}) {
		cfg.Store.Store = store.DefaultOptions()
	}
	if cfg.Store.CacheDocs == 0 {
		cfg.Store.CacheDocs = msgstore.DefaultOptions().CacheDocs
	}
	if cfg.Resources == nil {
		cfg.Resources = fstest.MapFS{}
	}
	if cfg.Transports == nil {
		cfg.Transports = gateway.NewRegistry()
	}
	prog, err := rule.Compile(app, cfg.Rules)
	if err != nil {
		return nil, err
	}
	// Rules on echo and outgoing gateway queues would race with the
	// engine-internal consumers of those queues; reject them early.
	for _, q := range app.Queues {
		if q.Kind == qdl.KindEcho || q.Kind == qdl.KindOutgoingGateway {
			if plan := prog.QueuePlans[q.Name]; plan != nil && len(plan.Rules) > 0 {
				return nil, fmt.Errorf("engine: rules cannot be attached to %s queue %q", q.Kind, q.Name)
			}
		}
	}

	ms, err := msgstore.Open(cfg.Dir, cfg.Store)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:   cfg,
		log:   cfg.Logger,
		ms:    ms,
		prog:  prog,
		lm:    locks.NewLockManager(),
		sched: newScheduler(),
		decls: make(map[string]*qdl.QueueDecl, len(app.Queues)),
	}
	for _, q := range app.Queues {
		e.decls[q.Name] = q
	}
	materialized := true
	if cfg.Materialized != nil {
		materialized = *cfg.Materialized
	}
	e.slices = slicing.NewManager(ms, prog.Properties, materialized)
	for name, propName := range prog.SlicingProps {
		e.slices.Define(name, propName)
	}

	// Declare queues and collections.
	for _, q := range app.Queues {
		mode := msgstore.Persistent
		if !q.Persistent {
			mode = msgstore.Transient
		}
		if _, err := ms.CreateQueue(q.Name, mode, q.Priority); err != nil {
			ms.Close()
			return nil, err
		}
		e.sched.DeclareQueue(q.Name, q.Priority)
	}
	for _, c := range app.Collections {
		if err := ms.CreateCollection(c.Name); err != nil {
			ms.Close()
			return nil, err
		}
	}

	// Rebuild derived state: slice memberships, reset watermarks,
	// scheduler backlog, pending timers.
	if err := e.slices.Rebuild(); err != nil {
		ms.Close()
		return nil, err
	}
	events, err := ms.ResetEvents()
	if err != nil {
		ms.Close()
		return nil, err
	}
	for _, ev := range events {
		e.slices.Reset(ev.Slicing, ev.Key, msgstore.MsgID(ev.Watermark))
	}
	e.timers = newTimerService(e)
	e.gws = newGatewayService(e)
	for _, q := range app.Queues {
		switch q.Kind {
		case qdl.KindEcho:
			for _, id := range ms.UnprocessedIDs(q.Name) {
				e.timers.schedule(q.Name, id)
			}
		case qdl.KindOutgoingGateway:
			e.gws.declareOutgoing(q)
			for _, id := range ms.UnprocessedIDs(q.Name) {
				e.gws.submit(q.Name, id)
			}
		case qdl.KindIncomingGateway:
			e.gws.declareIncoming(q)
			for _, id := range ms.UnprocessedIDs(q.Name) {
				e.sched.Add(q.Name, id)
			}
		default:
			for _, id := range ms.UnprocessedIDs(q.Name) {
				e.sched.Add(q.Name, id)
			}
		}
	}
	return e, nil
}

// Program exposes the compiled application.
func (e *Engine) Program() *rule.Program { return e.prog }

// MessageStore exposes the message store (introspection, tests).
func (e *Engine) MessageStore() *msgstore.Store { return e.ms }

// Slices exposes the slicing manager.
func (e *Engine) Slices() *slicing.Manager { return e.slices }

// Gateways exposes the communication subsystem.
func (e *Engine) Gateways() *gatewayService { return e.gws }

// Start launches the worker pool and background services.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	e.timers.start()
	e.gws.start()
	if e.cfg.GCInterval > 0 {
		e.stopGC = make(chan struct{})
		e.wg.Add(1)
		go e.gcLoop()
	}
}

// Stop shuts the engine down and closes the store.
func (e *Engine) Stop() error {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return e.ms.Close()
	}
	e.started = false
	e.mu.Unlock()
	e.sched.Close()
	e.timers.shutdown()
	e.gws.stop()
	if e.stopGC != nil {
		close(e.stopGC)
	}
	e.wg.Wait()
	return e.ms.Close()
}

// Drain blocks until the scheduler has no pending or in-flight work, or the
// timeout elapses. Timers that have not fired and in-flight gateway
// transfers are not waited for.
func (e *Engine) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if e.sched.Idle() && e.gws.idle() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return e.sched.Idle() && e.gws.idle()
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Processed:      e.stats.processed.Load(),
		RulesEvaluated: e.stats.rulesEval.Load(),
		RulesFired:     e.stats.rulesFired.Load(),
		Enqueued:       e.stats.enqueued.Load(),
		Resets:         e.stats.resets.Load(),
		Errors:         e.stats.errors.Load(),
		Deadlocks:      e.stats.deadlocks.Load(),
		Collected:      e.stats.collected.Load(),
		Backlog:        e.sched.Backlog(),
	}
}

// CollectGarbage runs one retention GC pass (Sec. 2.3.3).
func (e *Engine) CollectGarbage() (int, error) {
	n, err := e.slices.CollectGarbage()
	e.stats.collected.Add(uint64(n))
	return n, err
}

func (e *Engine) gcLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stopGC:
			return
		case <-t.C:
			if _, err := e.CollectGarbage(); err != nil {
				e.log.Error("gc failed", "err", err)
			}
		}
	}
}

// Enqueue inserts an external message into a queue (the API used by
// gateways, clients and tests). Property expressions of the target queue
// are evaluated; explicit props (e.g. the Sender system property) may be
// supplied.
func (e *Engine) Enqueue(queue string, doc *xmldom.Node, explicit map[string]xdm.Value) (msgstore.MsgID, error) {
	q, ok := e.ms.Queue(queue)
	if !ok {
		return 0, fmt.Errorf("engine: unknown queue %q", queue)
	}
	if decl := e.queueDecl(queue); decl != nil && decl.Schema != "" {
		if err := e.validateSchema(decl, doc); err != nil {
			return 0, err
		}
	}
	now := time.Now().UTC()
	system := map[string]xdm.Value{}
	props, err := e.prog.Properties.Evaluate(queue, doc, explicit, nil, system, now)
	if err != nil {
		return 0, err
	}
	tx := e.ms.Begin()
	id, err := tx.Enqueue(queue, doc, props, now)
	if err != nil {
		tx.Abort()
		return 0, err
	}
	if _, err := tx.Commit(); err != nil {
		return 0, err
	}
	e.slices.OnEnqueue(id, queue, props)
	e.stats.enqueued.Add(1)
	e.routeNewMessage(q, id)
	return id, nil
}

// EnqueueXML parses and enqueues.
func (e *Engine) EnqueueXML(queue, xml string, explicit map[string]xdm.Value) (msgstore.MsgID, error) {
	doc, err := xmldom.ParseString(xml)
	if err != nil {
		return 0, err
	}
	return e.Enqueue(queue, doc, explicit)
}

// routeNewMessage hands a committed message to its consumer: the rule
// scheduler, the timer service (echo queues) or the gateway sender.
func (e *Engine) routeNewMessage(q *msgstore.Queue, id msgstore.MsgID) {
	kind := e.queueKind(q.Name)
	switch kind {
	case qdl.KindEcho:
		e.timers.schedule(q.Name, id)
	case qdl.KindOutgoingGateway:
		e.gws.submit(q.Name, id)
	default:
		e.sched.Add(q.Name, id)
	}
}

func (e *Engine) queueKind(name string) qdl.QueueKind {
	if q := e.decls[name]; q != nil {
		return q.Kind
	}
	return qdl.KindBasic
}

func (e *Engine) queueDecl(name string) *qdl.QueueDecl {
	return e.decls[name]
}

// worker is the message-processing loop.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		queue, id, ok := e.sched.Claim()
		if !ok {
			return
		}
		e.processWithRetry(queue, id)
	}
}

func (e *Engine) processWithRetry(queue string, id msgstore.MsgID) {
	backoff := time.Microsecond * 50
	for attempt := 0; ; attempt++ {
		err := e.processMessage(queue, id)
		if err == nil {
			e.sched.Done()
			return
		}
		if err == locks.ErrDeadlock && attempt < e.cfg.MaxRetries {
			e.stats.deadlocks.Add(1)
			time.Sleep(backoff)
			if backoff < 10*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		// Non-retryable (or retry budget exhausted): route to the error
		// queue and consume the message so it is processed exactly once.
		e.handleRuleError(queue, id, err)
		e.sched.Done()
		return
	}
}

// processMessage runs the execution-model cycle for one message: evaluate
// all applicable rules (queue plan + slice plans), then apply the combined
// pending update list and the processed flag in a single transaction.
func (e *Engine) processMessage(queue string, id msgstore.MsgID) error {
	txnID := e.txnSeq.Add(1)
	defer e.lm.ReleaseAll(txnID)

	// Home-queue lock: coarse X, or IX + message X under slice locking.
	if e.cfg.Granularity == LockQueue {
		if err := e.lm.Acquire(txnID, locks.Resource("q", queue), locks.X); err != nil {
			return err
		}
	} else {
		if err := e.lm.Acquire(txnID, locks.Resource("q", queue), locks.IX); err != nil {
			return err
		}
		if err := e.lm.Acquire(txnID, locks.Resource("m", fmt.Sprint(id)), locks.X); err != nil {
			return err
		}
	}

	doc, err := e.ms.Doc(id)
	if err != nil {
		return err
	}
	msg, ok := e.ms.Get(id)
	if !ok {
		return fmt.Errorf("engine: message %d vanished", id)
	}
	if msg.Processed {
		return nil // duplicate schedule after crash recovery
	}
	now := time.Now().UTC()
	// Element names are the dispatch key set: computed lazily, only when
	// some applicable rule actually has an element trigger.
	var namesMemo map[string]bool
	elementNames := func() map[string]bool {
		if namesMemo == nil {
			namesMemo = rule.ElementNames(doc)
		}
		return namesMemo
	}

	// Lock the slices of the message (they are read by slice rules and
	// advanced by resets).
	memberships := e.slices.SlicesOf(id)
	if e.cfg.Granularity == LockSlice {
		for _, mb := range memberships {
			if err := e.lm.Acquire(txnID, locks.Resource("sl", mb.Slicing, mb.Key), locks.X); err != nil {
				return err
			}
		}
	}

	rt := &evalRuntime{eng: e, txnID: txnID, msgID: id, doc: doc, queue: queue, props: msg.Props, now: now}
	combined := &xquery.UpdateList{}
	type ruleCtx struct {
		r       *rule.Rule
		slicing string
		key     string
	}
	var toRun []ruleCtx
	if plan := e.prog.QueuePlans[queue]; plan != nil {
		for _, r := range plan.Select(msg.Props, elementNames) {
			toRun = append(toRun, ruleCtx{r: r})
		}
	}
	for _, mb := range memberships {
		if plan := e.prog.SlicePlans[mb.Slicing]; plan != nil {
			for _, r := range plan.Select(msg.Props, elementNames) {
				toRun = append(toRun, ruleCtx{r: r, slicing: mb.Slicing, key: mb.Key})
			}
		}
	}

	var failed *ruleError
	for _, rc := range toRun {
		rt.curSlicing, rt.curKey = rc.slicing, rc.key
		e.stats.rulesEval.Add(1)
		seq, updates, err := xquery.Eval(rc.r.Body, rt, xquery.EvalOptions{ContextDoc: doc})
		_ = seq
		if err != nil {
			if err == locks.ErrDeadlock {
				return err
			}
			failed = &ruleError{rule: rc.r, err: err}
			break
		}
		if updates.Len() > 0 {
			e.stats.rulesFired.Add(1)
		}
		for _, up := range updates.Updates {
			if r, isReset := up.(*xquery.ResetUpdate); isReset && r.Implicit {
				// Resolve the implicit reset against the rule's slice.
				if rc.slicing == "" {
					failed = &ruleError{rule: rc.r, err: fmt.Errorf("bare 'do reset' outside a slicing rule")}
					break
				}
				r.Slicing, r.Key = rc.slicing, xdm.NewString(rc.key)
			}
			combined.Append(up)
		}
		if failed != nil {
			break
		}
	}
	if failed != nil {
		// Error path: the message still counts as processed (Sec. 3.6);
		// the error becomes a message in the appropriate error queue.
		if err := e.applyUpdates(txnID, id, queue, msg.Props, &xquery.UpdateList{}, now, ""); err != nil {
			return err
		}
		e.emitError(queue, id, doc, failed.rule, failed.err)
		e.stats.processed.Add(1)
		return nil
	}

	ruleName := ""
	if len(toRun) > 0 {
		ruleName = toRun[0].r.Name
	}
	if err := e.applyUpdates(txnID, id, queue, msg.Props, combined, now, ruleName); err != nil {
		return err
	}
	e.stats.processed.Add(1)
	return nil
}

type ruleError struct {
	rule *rule.Rule
	err  error
}
