package engine

import (
	"fmt"
	"testing"
	"time"

	"demaq/internal/msgstore"
	"demaq/internal/qdl"
	"demaq/internal/xmldom"
)

// --- projected ingest differential: projected vs full, batch sizes 1/32 ---

// projDiffApp's rules reference only /order/id and /order/poison, so the
// inbox projection prunes the bulky <items> subtree. The poison rule
// exercises the error path: the error message embeds the *original*
// document, which forces the engine to re-materialize the full tree from
// a projected record.
const projDiffApp = `
	create queue inbox kind basic mode persistent;
	create queue hits kind basic mode persistent;
	create queue errs kind basic mode persistent;
	create rule route for inbox if (exists(/order/id)) then
	  do enqueue <routed>{string(/order/id)}</routed> into hits;
	create rule poison for inbox errorqueue errs
	  if (/order/poison) then do enqueue <x>{1 idiv 0}</x> into hits;
`

func projDiffPayload(i int) string {
	poison := ""
	if i%6 == 5 {
		poison = "<poison/>"
	}
	return fmt.Sprintf(`<order><id>%d</id>%s<items><item sku="A-%d" qty="2"><name>article</name><price cur="EUR">19.90</price></item><item sku="B-%d" qty="1"><note>mixed <b>content</b> tail</note></item></items></order>`,
		i, poison, i, i)
}

func runProjDiff(t *testing.T, batchSize int, fullIngest bool, n int) (map[string][]string, Stats) {
	t.Helper()
	e := newEngine(t, projDiffApp, func(c *Config) {
		c.Workers = 8
		c.BatchSize = batchSize
		c.FullIngest = fullIngest
		c.Store = msgstore.DefaultOptions()
		c.Store.Store.SyncCommits = false
	})
	if fullIngest {
		if e.Projection("inbox") != nil {
			t.Fatal("FullIngest must disable projections")
		}
	} else if e.Projection("inbox") == nil {
		t.Fatal("projDiffApp must yield an inbox projection (analysis regressed?)")
	}
	for i := 0; i < n; i++ {
		if _, err := e.EnqueueXML("inbox", projDiffPayload(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Drain(60 * time.Second) {
		t.Fatal("drain")
	}
	state := map[string][]string{}
	for _, q := range e.MessageStore().QueueNames() {
		state[q] = queueFingerprint(t, e, q)
	}
	return state, e.Stats()
}

// TestProjectedIngestDifferential runs the same workload with streaming
// projected ingest and with the legacy full-DOM ingest, at batch sizes 1
// and 32, and asserts identical final store state — including the error
// queue, whose messages embed the complete original documents that the
// projected run must lazily re-materialize.
func TestProjectedIngestDifferential(t *testing.T) {
	const n = 180
	for _, batch := range []int{1, 32} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			full, fullStats := runProjDiff(t, batch, true, n)
			proj, projStats := runProjDiff(t, batch, false, n)
			if len(full) != len(proj) {
				t.Fatalf("queue sets differ: %d vs %d", len(full), len(proj))
			}
			for q, want := range full {
				got, ok := proj[q]
				if !ok {
					t.Fatalf("queue %q missing in projected run", q)
				}
				if len(got) != len(want) {
					t.Fatalf("queue %q: %d messages projected vs %d full", q, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("queue %q message %d differs:\n  full:      %s\n  projected: %s", q, i, want[i], got[i])
					}
				}
			}
			if fullStats.Processed != projStats.Processed {
				t.Errorf("processed: full %d, projected %d", fullStats.Processed, projStats.Processed)
			}
			if fullStats.Errors != projStats.Errors {
				t.Errorf("errors: full %d, projected %d", fullStats.Errors, projStats.Errors)
			}
			if want := uint64(n / 6); projStats.Errors != want {
				t.Errorf("poison errors: %d, want %d", projStats.Errors, want)
			}
		})
	}
}

// TestProjectionRuleChangeFallsBackToFullDocs stores messages under one
// projection, then reopens the store with rules that read paths *outside*
// that projection. The stored records carry the old fingerprint; the new
// one mismatches, so every read falls back to full materialization (the
// spans are re-parsed) and the new rules see complete documents.
func TestProjectionRuleChangeFallsBackToFullDocs(t *testing.T) {
	const appA = `
		create queue inbox kind basic mode persistent;
		create queue hits kind basic mode persistent;
		create rule route for inbox if (exists(/order/id)) then
		  do enqueue <routed>{string(/order/id)}</routed> into hits;
	`
	// appB reads the item names — inside the subtree appA's projection
	// pruned into opaque spans.
	const appB = `
		create queue inbox kind basic mode persistent;
		create queue hits kind basic mode persistent;
		create rule route for inbox if (exists(/order/items)) then
		  do enqueue <names>{string(/order/items/item/name)}</names> into hits;
	`
	dir := t.TempDir()
	const n = 20

	appl, err := qdl.Parse(appA)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dir: dir, Workers: 4}
	cfg.Store = msgstore.DefaultOptions()
	cfg.Store.Store.SyncCommits = false
	e, err := New(cfg, appl)
	if err != nil {
		t.Fatal(err)
	}
	projA := e.Projection("inbox")
	if projA == nil {
		t.Fatal("appA must yield an inbox projection")
	}
	// Not started: messages are stored (projected under appA's
	// fingerprint) but never processed.
	for i := 0; i < n; i++ {
		if _, err := e.EnqueueXML("inbox", fmt.Sprintf(
			`<order><id>%d</id><items><item><name>article-%d</name></item></items></order>`, i, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	// Reopen under appB: new projection, old records.
	appl2, err := qdl.Parse(appB)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(cfg, appl2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e2.Stop() })
	projB := e2.Projection("inbox")
	if projB == nil {
		t.Fatal("appB must yield an inbox projection")
	}
	if projA.Fingerprint() == projB.Fingerprint() {
		t.Fatal("the two projections must have distinct fingerprints")
	}
	e2.Start()
	if !e2.Drain(30 * time.Second) {
		t.Fatal("drain")
	}
	docs, err := e2.MessageStore().QueueDocs("hits")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != n {
		t.Fatalf("hits has %d messages, want %d", len(docs), n)
	}
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		want[fmt.Sprintf("<names>article-%d</names>", i)] = true
	}
	for _, d := range docs {
		g := xmldom.Serialize(d)
		if !want[g] {
			t.Errorf("unexpected hit %q (pruned span not re-materialized?)", g)
		}
	}
}
