package msgstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// TestConcurrentEnqueueProcessRemove exercises the striped-lock commit
// pipeline under -race: concurrent enqueuers on persistent and transient
// queues, concurrent processors marking messages processed, concurrent
// readers scanning, and a GC goroutine removing processed messages.
func TestConcurrentEnqueueProcessRemove(t *testing.T) {
	ms := openTemp(t)
	if _, err := ms.CreateQueue("disk", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.CreateQueue("mem", Transient, 0); err != nil {
		t.Fatal(err)
	}

	const (
		workers    = 8
		perWorker  = 50
		totalPerQ  = workers * perWorker
		totalCount = 2 * totalPerQ
	)
	var wg sync.WaitGroup
	idCh := make(chan MsgID, totalCount)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for _, queue := range []string{"disk", "mem"} {
					tx := ms.Begin()
					doc := xmldom.MustParse(fmt.Sprintf(`<m w="%d" i="%d">payload</m>`, w, i))
					id, err := tx.Enqueue(queue, doc, map[string]xdm.Value{"w": xdm.NewInteger(int64(w))}, time.Now())
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := tx.Commit(); err != nil {
						t.Error(err)
						return
					}
					idCh <- id
				}
			}
		}(w)
	}
	// Processors mark committed messages processed while enqueues continue.
	var pwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for id := range idCh {
				tx := ms.Begin()
				tx.MarkProcessed(id)
				if _, err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Readers scan both queues concurrently.
	stopRead := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				for _, queue := range []string{"disk", "mem"} {
					msgs, err := ms.Messages(queue)
					if err != nil {
						t.Error(err)
						return
					}
					for i := 1; i < len(msgs); i++ {
						if msgs[i-1].ID >= msgs[i].ID {
							t.Errorf("queue %s scan out of ID order: %d then %d", queue, msgs[i-1].ID, msgs[i].ID)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(idCh)
	pwg.Wait()
	close(stopRead)
	rwg.Wait()

	for _, queue := range []string{"disk", "mem"} {
		if got := len(ms.ProcessedIDs(queue)); got != totalPerQ {
			t.Fatalf("queue %s: %d processed, want %d", queue, got, totalPerQ)
		}
		if got := len(ms.UnprocessedIDs(queue)); got != 0 {
			t.Fatalf("queue %s: %d unprocessed left", queue, got)
		}
	}
	// Remove everything processed from the persistent queue, concurrently
	// with a scanner.
	if err := ms.Remove("disk", ms.ProcessedIDs("disk")); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := ms.Messages("disk"); len(msgs) != 0 {
		t.Fatalf("disk queue after remove: %d messages", len(msgs))
	}
}

// TestConcurrentCommitDurability crashes the store after a burst of
// concurrent commits and verifies every committed message is recovered —
// the group-commit path must not trade away durability.
func TestConcurrentCommitDurability(t *testing.T) {
	dir := t.TempDir()
	ms, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ms.CreateQueue("q", Persistent, 0)
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	committed := make([][]MsgID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := ms.Begin()
				id, err := tx.Enqueue("q", xmldom.MustParse(fmt.Sprintf(`<m>%d-%d</m>`, w, i)), nil, time.Now())
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				committed[w] = append(committed[w], id)
			}
		}(w)
	}
	wg.Wait()
	st := ms.PageStore().Stats()
	if st.WALFsyncs > st.Commits {
		t.Fatalf("more fsyncs (%d) than commits (%d)", st.WALFsyncs, st.Commits)
	}
	ms.Crash()

	ms2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	ms2.CreateQueue("q", Persistent, 0)
	for w := range committed {
		for _, id := range committed[w] {
			if _, ok := ms2.Get(id); !ok {
				t.Fatalf("committed message %d lost after crash", id)
			}
		}
	}
	if msgs, _ := ms2.Messages("q"); len(msgs) != workers*perWorker {
		t.Fatalf("recovered %d messages, want %d", len(msgs), workers*perWorker)
	}
}

// TestConcurrentCollections verifies per-collection striping: concurrent
// appends to distinct and shared collections stay consistent.
func TestConcurrentCollections(t *testing.T) {
	ms := openTemp(t)
	const workers, perWorker = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				own := fmt.Sprintf("c%d", w)
				if err := ms.AddToCollection(own, xmldom.MustParse(`<d/>`)); err != nil {
					t.Error(err)
					return
				}
				if err := ms.AddToCollection("shared", xmldom.MustParse(`<s/>`)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if got := len(ms.Collection(fmt.Sprintf("c%d", w))); got != perWorker {
			t.Fatalf("collection c%d: %d docs, want %d", w, got, perWorker)
		}
	}
	if got := len(ms.Collection("shared")); got != workers*perWorker {
		t.Fatalf("shared collection: %d docs, want %d", got, workers*perWorker)
	}
}

// TestInterleavedCommitOrderVisibility pins the publish invariant directly:
// a transaction with a smaller pre-assigned ID committing after a larger
// one must still surface in ID order in queue scans.
func TestInterleavedCommitOrderVisibility(t *testing.T) {
	ms := openTemp(t)
	ms.CreateQueue("q", Persistent, 0)

	t1 := ms.Begin()
	id1, err := t1.Enqueue("q", xmldom.MustParse(`<first/>`), nil, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	t2 := ms.Begin()
	id2, err := t2.Enqueue("q", xmldom.MustParse(`<second/>`), nil, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id1 >= id2 {
		t.Fatalf("pre-assigned IDs not ordered: %d, %d", id1, id2)
	}
	// Later ID commits first.
	if _, err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	msgs, err := ms.Messages("q")
	if err != nil || len(msgs) != 2 {
		t.Fatalf("messages: %v %v", msgs, err)
	}
	if msgs[0].ID != id1 || msgs[1].ID != id2 {
		t.Fatalf("scan order %d,%d; want %d,%d", msgs[0].ID, msgs[1].ID, id1, id2)
	}
}
