package msgstore

import (
	"sync"
	"testing"
	"time"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

// raceRuntime is a minimal xquery.Runtime over a single shared document.
type raceRuntime struct{ doc *xmldom.Node }

func (r raceRuntime) Message() (*xmldom.Node, error)          { return r.doc, nil }
func (r raceRuntime) Queue(string) ([]*xmldom.Node, error)    { return []*xmldom.Node{r.doc}, nil }
func (r raceRuntime) Property(string) (xdm.Value, error)      { return xdm.NewString("p"), nil }
func (r raceRuntime) Slice() ([]*xmldom.Node, error)          { return []*xmldom.Node{r.doc}, nil }
func (r raceRuntime) SliceKey() (xdm.Value, error)            { return xdm.NewString("k"), nil }
func (raceRuntime) Collection(string) ([]*xmldom.Node, error) { return nil, nil }
func (raceRuntime) Now() time.Time                            { return time.Unix(0, 0).UTC() }

// TestDocCacheSharedEvaluationRace pins the immutability contract of the
// document cache: Doc returns one shared *xmldom.Node to every caller, and
// concurrent rule evaluations over that shared tree must be race-free
// because evaluation never mutates documents (reads traverse, constructors
// deep-copy). Run under -race this fails if any evaluation path writes to
// a shared node.
func TestDocCacheSharedEvaluationRace(t *testing.T) {
	ms := openTemp(t)
	if _, err := ms.CreateQueue("q", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	tx := ms.Begin()
	doc := xmldom.MustParse(`<order><id>42</id><items><item n="1">a</item><item n="2">b</item></items><total>99.5</total></order>`)
	id, err := tx.Enqueue("q", doc, map[string]xdm.Value{"k": xdm.NewString("v")}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	shared, err := ms.Doc(id)
	if err != nil {
		t.Fatal(err)
	}

	// The expressions cover the mutation-prone paths: axis navigation,
	// predicates, atomization of string values, and constructors that copy
	// subtrees of the shared document into new messages.
	exprs := []*xquery.Compiled{
		xquery.MustCompile(`//item[@n = "2"]`, xquery.CompileOptions{}),
		xquery.MustCompile(`sum(//total) + count(//item)`, xquery.CompileOptions{}),
		xquery.MustCompile(`<copy>{//items}</copy>`, xquery.CompileOptions{}),
		xquery.MustCompile(`string-join(for $i in //item return string($i), ",")`, xquery.CompileOptions{}),
		xquery.MustCompile(`do enqueue <ack id="{//id}">{//items/item[1]}</ack> into q`, xquery.CompileOptions{}),
	}

	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				got, err := ms.Doc(id)
				if err != nil {
					t.Error(err)
					return
				}
				if got != shared {
					t.Error("doc cache returned a different pointer: documents must be shared")
					return
				}
				rt := raceRuntime{doc: got}
				for _, c := range exprs {
					if _, _, err := xquery.Eval(c, rt, xquery.EvalOptions{ContextDoc: got}); err != nil {
						t.Errorf("eval: %v", err)
						return
					}
				}
				_ = got.StringValue()
				_ = xmldom.Serialize(got)
			}
		}()
	}
	wg.Wait()
}
