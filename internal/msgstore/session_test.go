package msgstore

import (
	"fmt"
	"testing"
	"time"

	"demaq/internal/xmldom"
)

// TestSessionRoundtrip: every field of a session snapshot survives the
// record codec. The codec elides the window's all-ones tail (fully-admitted
// old region); the restore side treats absent words as all-ones, so the
// elision is semantically lossless.
func TestSessionRoundtrip(t *testing.T) {
	in := SessionState{
		Kind:     SessionRecv,
		Endpoint: "fnet://node/in",
		Peer:     "fnet://client/acks",
		Seq:      12345,
		Window:   []uint64{0xdeadbeef, 1, 0, 7},
	}
	ver, out, err := decodeSession(encodeSession(77, in))
	if err != nil {
		t.Fatal(err)
	}
	if ver != 77 {
		t.Fatalf("ver = %d, want 77", ver)
	}
	if out.Kind != in.Kind || out.Endpoint != in.Endpoint || out.Peer != in.Peer || out.Seq != in.Seq {
		t.Fatalf("roundtrip mismatch: %+v != %+v", out, in)
	}
	if len(out.Window) != len(in.Window) {
		t.Fatalf("window length %d, want %d", len(out.Window), len(in.Window))
	}
	for i := range in.Window {
		if out.Window[i] != in.Window[i] {
			t.Fatalf("window[%d] = %x, want %x", i, out.Window[i], in.Window[i])
		}
	}

	// All-ones tail elision: the dense steady-state window persists as a
	// prefix; words below the kept prefix are exactly the zeros/partials.
	dense := SessionState{
		Kind: SessionRecv, Endpoint: "ep", Peer: "p", Seq: 9999,
		Window: []uint64{0xdeadbeef, ^uint64(0), ^uint64(0), ^uint64(0)},
	}
	if _, got, err := decodeSession(encodeSession(1, dense)); err != nil {
		t.Fatal(err)
	} else if len(got.Window) != 1 || got.Window[0] != 0xdeadbeef {
		t.Fatalf("dense window persisted as %x, want the [deadbeef] prefix", got.Window)
	}

	// Corrupt truncations must error, not panic.
	enc := encodeSession(1, in)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := decodeSession(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

// TestSessionTxnAtomicity: a session snapshot staged with an enqueue is
// durable iff the enqueue is, and the newest version wins after reopen.
func TestSessionTxnAtomicity(t *testing.T) {
	dir := t.TempDir()
	ms, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.CreateQueue("q", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		tx := ms.Begin()
		if _, err := tx.Enqueue("q", xmldom.MustParse(fmt.Sprintf(`<m n="%d"/>`, i)), nil, time.Now()); err != nil {
			t.Fatal(err)
		}
		tx.PutSession(SessionState{Kind: SessionRecv, Endpoint: "ep", Peer: "peer", Seq: uint64(i), Window: []uint64{1}})
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Aborted snapshot leaves no trace.
	tx := ms.Begin()
	tx.PutSession(SessionState{Kind: SessionRecv, Endpoint: "ep", Peer: "peer", Seq: 99})
	tx.Abort()

	s, ok := ms.SessionSnapshot(SessionRecv, "ep", "peer")
	if !ok || s.Seq != 5 {
		t.Fatalf("live snapshot = %+v, %v; want Seq 5", s, ok)
	}
	ms.Crash()

	ms2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	s, ok = ms2.SessionSnapshot(SessionRecv, "ep", "peer")
	if !ok || s.Seq != 5 || len(s.Window) != 1 || s.Window[0] != 1 {
		t.Fatalf("recovered snapshot = %+v, %v; want Seq 5", s, ok)
	}
	if err := ms2.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	got := ms2.RecvSessionStates("ep")
	if len(got) != 1 || got[0].Peer != "peer" {
		t.Fatalf("RecvSessionStates = %+v", got)
	}
}

// TestSessionCompaction: a hot key's stale on-disk versions are garbage
// collected, so the heap does not grow one record per update forever.
func TestSessionCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.Store.SyncCommits = false
	ms, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const updates = 500
	for i := 1; i <= updates; i++ {
		if err := ms.PutSession(SessionState{Kind: SessionSend, Endpoint: "src", Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ms.sessMu.Lock()
	live := len(ms.sessions[sessionKey{kind: SessionSend, endpoint: "src"}].recs)
	ms.sessMu.Unlock()
	if live > sessionCompactAfter+1 {
		t.Fatalf("%d record versions retained in memory, want <= %d", live, sessionCompactAfter+1)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}

	ms2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	s, ok := ms2.SessionSnapshot(SessionSend, "src", "")
	if !ok || s.Seq != updates {
		t.Fatalf("recovered snapshot = %+v, %v; want Seq %d", s, ok, updates)
	}
	ms2.sessMu.Lock()
	onDisk := len(ms2.sessions[sessionKey{kind: SessionSend, endpoint: "src"}].recs)
	ms2.sessMu.Unlock()
	if onDisk > 2*sessionCompactAfter {
		t.Fatalf("%d session records on disk after %d updates, want compaction to bound it", onDisk, updates)
	}
}
