package msgstore

import (
	"testing"
	"time"

	"demaq/internal/store"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// TestStatusSideHeapKeepsPayloadImmutable pins the side-heap contract:
// marking a message processed touches only its status record, never the
// payload record, so payload pages written at enqueue are never dirtied
// again.
func TestStatusSideHeapKeepsPayloadImmutable(t *testing.T) {
	dir := t.TempDir()
	ms, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	ms.CreateQueue("q", Persistent, 0)
	tx := ms.Begin()
	id, _ := tx.Enqueue("q", xmldom.MustParse(`<m>x</m>`), map[string]xdm.Value{"k": xdm.NewString("v")}, time.Now())
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	m := ms.lookup(id)
	if m.statusRID == (store.RID{}) {
		t.Fatal("new message has no status side-heap record")
	}
	before, err := ms.ps.Read(m.rid)
	if err != nil {
		t.Fatal(err)
	}
	tx = ms.Begin()
	tx.MarkProcessed(id)
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after, err := ms.ps.Read(m.rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("payload record changed by MarkProcessed; status must live in the side-heap")
	}
	srec, err := ms.ps.Read(m.statusRID)
	if err != nil {
		t.Fatal(err)
	}
	if len(srec) != statusRecSize || srec[8]&statusProcessed == 0 {
		t.Fatalf("status record not updated: % x", srec)
	}
}

// TestStatusSideHeapLegacyFallback simulates a store written before the
// status side-heap existed: payload records with no side record must keep
// working via the in-place status-byte update, and recovery must read the
// flag back from the payload record.
func TestStatusSideHeapLegacyFallback(t *testing.T) {
	dir := t.TempDir()
	ms, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ms.CreateQueue("q", Persistent, 0)
	var ids []MsgID
	tx := ms.Begin()
	for i := 0; i < 3; i++ {
		id, _ := tx.Enqueue("q", xmldom.MustParse(`<m>x</m>`), nil, time.Now())
		ids = append(ids, id)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Strip the side-heap records to make the payload records look legacy.
	q := ms.getQueue("q")
	var srids []store.RID
	ms.ps.Scan(q.statusHeap, func(rid store.RID, _ []byte) bool {
		srids = append(srids, rid)
		return true
	})
	if len(srids) != 3 {
		t.Fatalf("expected 3 status records, got %d", len(srids))
	}
	if err := ms.ps.BatchDelete(q.statusHeap, srids); err != nil {
		t.Fatal(err)
	}
	ms.Crash()

	ms2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := ms2.lookup(ids[1]).statusRID; got != (store.RID{}) {
		t.Fatalf("legacy message should have no statusRID, got %v", got)
	}
	tx = ms2.Begin()
	tx.MarkProcessed(ids[1])
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ms2.Crash()

	ms3, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms3.Close()
	msgs, _ := ms3.Messages("q")
	if len(msgs) != 3 {
		t.Fatalf("recovered %d messages", len(msgs))
	}
	for i, m := range msgs {
		if m.Processed != (i == 1) {
			t.Fatalf("message %d processed=%v after legacy-fallback recovery", i, m.Processed)
		}
	}
}
