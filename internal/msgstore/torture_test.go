package msgstore

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"demaq/internal/store"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// The crash torture harness: a deterministic mixed workload (enqueue,
// multi-message transactions, processed marking, retention removal,
// checkpoints, reads) runs against a FaultFS. A first pass enumerates
// every write/sync/remove the workload performs; the sweep then reruns
// it once per operation, crashing exactly there, reopening the store, and
// checking the recovered state against a model of what had committed:
//
//   - committed messages survive with queue, properties, payload and
//     processed flag intact (no lost commits);
//   - the one operation in flight at the crash is all-or-nothing
//     (multi-enqueue transactions appear entirely or not at all);
//   - removed messages stay removed; nothing else disappears;
//   - no ghost messages appear;
//   - VerifyIntegrity holds: heaps decode, the status side-heap joins,
//     the property index matches a recomputation, page LSNs are within
//     the log;
//   - recovery is bounded: with fuzzy checkpoints running every 11th
//     iteration, replay after any crash covers at most the records since
//     the last complete checkpoint — never the whole workload history.

const tortureDir = "torture" // never touches the real FS: FaultFS only

func tortureOptions(fs *store.FaultFS) Options {
	return Options{
		Store: store.Options{
			VFS:             fs,
			BufferPages:     16, // force evictions → write-backs mid-run
			SyncCommits:     true,
			UnloggedDeletes: true,
			// Tiny segments so the workload rolls the WAL and the fuzzy
			// checkpoints recycle dead segments — both are crash sites.
			WALSegmentSize: 16 << 10,
		},
		CacheDocs: 8,
	}
}

// modelMsg is the oracle's view of one committed message.
type modelMsg struct {
	id        MsgID
	queue     string
	props     map[string]string
	text      string
	processed bool
	removed   bool
}

type model struct {
	order []MsgID
	msgs  map[MsgID]*modelMsg

	// Effects of the operation in flight when the crash hit; each may or
	// may not have reached the disk.
	maybeEnq       []*modelMsg // one transaction: all-or-nothing
	maybeProcessed []MsgID
	maybeRemoved   []MsgID
}

func newModel() *model { return &model{msgs: map[MsgID]*modelMsg{}} }

func (m *model) firstWhere(pred func(*modelMsg) bool) *modelMsg {
	for _, id := range m.order {
		if mm := m.msgs[id]; pred(mm) {
			return mm
		}
	}
	return nil
}

var tortureQueues = []string{"alpha", "beta", "gamma"}

func tortureDoc(i int) (xml, text string) {
	pad := ""
	if i%9 == 0 {
		// Spill into an overflow chain: > 8K payload.
		pad = strings.Repeat("x", 9000)
	}
	text = fmt.Sprintf("%d%s", i, pad)
	return fmt.Sprintf("<m><i>%d</i><pad>%s</pad></m>", i, pad), text
}

func tortureProps(i int) (map[string]xdm.Value, map[string]string) {
	v := map[string]xdm.Value{
		"kind": xdm.NewString(fmt.Sprintf("k%d", i%4)),
		"seq":  xdm.NewString(fmt.Sprint(i)),
	}
	s := map[string]string{"kind": fmt.Sprintf("k%d", i%4), "seq": fmt.Sprint(i)}
	return v, s
}

// runTortureWorkload drives iters iterations against ms, recording
// committed effects in mdl. On the first error it records the in-flight
// operation's effects as "maybe" and returns the error.
func runTortureWorkload(ms *Store, mdl *model, iters int) error {
	for _, q := range tortureQueues {
		if _, err := ms.CreateQueue(q, Persistent, 0); err != nil {
			return err
		}
	}
	for i := 1; i <= iters; i++ {
		q := tortureQueues[i%len(tortureQueues)]
		xml, text := tortureDoc(i)
		props, sprops := tortureProps(i)

		tx := ms.Begin()
		var pend []*modelMsg
		id, err := tx.Enqueue(q, xmldom.MustParse(xml), props, time.Now())
		if err != nil {
			return err
		}
		pend = append(pend, &modelMsg{id: id, queue: q, props: sprops, text: text})
		if i%6 == 0 {
			// Multi-message transaction: atomicity across both enqueues.
			xml2, text2 := tortureDoc(i + 1000)
			props2, sprops2 := tortureProps(i + 1000)
			q2 := tortureQueues[(i+1)%len(tortureQueues)]
			id2, err := tx.Enqueue(q2, xmldom.MustParse(xml2), props2, time.Now())
			if err != nil {
				return err
			}
			pend = append(pend, &modelMsg{id: id2, queue: q2, props: sprops2, text: text2})
		}
		if _, err := tx.Commit(); err != nil {
			mdl.maybeEnq = pend
			return err
		}
		for _, mm := range pend {
			mdl.order = append(mdl.order, mm.id)
			mdl.msgs[mm.id] = mm
		}

		if i%5 == 0 {
			if mm := mdl.firstWhere(func(m *modelMsg) bool { return !m.processed && !m.removed }); mm != nil {
				tx := ms.Begin()
				if err := tx.MarkProcessed(mm.id); err != nil {
					return err
				}
				if _, err := tx.Commit(); err != nil {
					mdl.maybeProcessed = []MsgID{mm.id}
					return err
				}
				mm.processed = true
			}
		}
		if i%7 == 0 {
			if mm := mdl.firstWhere(func(m *modelMsg) bool { return m.processed && !m.removed }); mm != nil {
				if err := ms.Remove(mm.queue, []MsgID{mm.id}); err != nil {
					mdl.maybeRemoved = []MsgID{mm.id}
					return err
				}
				mm.removed = true
			}
		}
		if i%11 == 0 {
			if err := ms.PageStore().Checkpoint(); err != nil {
				return err // checkpoint changes no logical state: nothing "maybe"
			}
		}
		if i%13 == 0 {
			// Reads mixed in: they evict dirty pages through the tiny pool,
			// adding write-back crash points mid-read.
			for _, qn := range tortureQueues {
				ms.UnprocessedIDs(qn)
			}
			ms.PropertyIDsAfter("kind", "k1", 0, nil)
			if mm := mdl.firstWhere(func(m *modelMsg) bool { return !m.removed }); mm != nil {
				if _, err := ms.Doc(mm.id); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkRecovered validates the reopened store against the model.
func checkRecovered(ms *Store, mdl *model) error {
	if err := ms.VerifyIntegrity(); err != nil {
		return err
	}
	maybeProcessed := map[MsgID]bool{}
	for _, id := range mdl.maybeProcessed {
		maybeProcessed[id] = true
	}
	maybeRemoved := map[MsgID]bool{}
	for _, id := range mdl.maybeRemoved {
		maybeRemoved[id] = true
	}

	for _, id := range mdl.order {
		mm := mdl.msgs[id]
		got, ok := ms.Get(id)
		if mm.removed {
			if ok {
				return fmt.Errorf("message %d: removed before the crash but still present", id)
			}
			continue
		}
		if !ok {
			if maybeRemoved[id] {
				continue // the in-flight removal reached the disk
			}
			return fmt.Errorf("message %d: committed but lost", id)
		}
		if err := checkMessage(ms, got, mm, maybeProcessed[id]); err != nil {
			return err
		}
	}

	// The in-flight transaction is all-or-nothing.
	if len(mdl.maybeEnq) > 0 {
		present := 0
		for _, mm := range mdl.maybeEnq {
			if got, ok := ms.Get(mm.id); ok {
				if err := checkMessage(ms, got, mm, false); err != nil {
					return fmt.Errorf("maybe-committed %w", err)
				}
				present++
			}
		}
		if present != 0 && present != len(mdl.maybeEnq) {
			return fmt.Errorf("torn transaction: %d of %d enqueues survived", present, len(mdl.maybeEnq))
		}
	}

	// No ghosts: everything in the store is accounted for.
	known := map[MsgID]bool{}
	for id := range mdl.msgs {
		known[id] = true
	}
	for _, mm := range mdl.maybeEnq {
		known[mm.id] = true
	}
	for _, qn := range tortureQueues {
		msgs, err := ms.Messages(qn)
		if err != nil {
			// A crash during queue creation may legitimately lose the queue —
			// but then no committed message can claim to live in it.
			for _, mm := range mdl.msgs {
				if mm.queue == qn && !mm.removed && !maybeRemoved[mm.id] {
					return fmt.Errorf("queue %s lost but holds committed message %d: %v", qn, mm.id, err)
				}
			}
			continue
		}
		for _, m := range msgs {
			if !known[m.ID] {
				return fmt.Errorf("queue %s: ghost message %d", qn, m.ID)
			}
		}
	}
	return nil
}

func checkMessage(ms *Store, got Message, mm *modelMsg, processedAmbiguous bool) error {
	if got.Queue != mm.queue {
		return fmt.Errorf("message %d: queue %q, want %q", mm.id, got.Queue, mm.queue)
	}
	if !processedAmbiguous && got.Processed != mm.processed {
		return fmt.Errorf("message %d: processed=%v, want %v", mm.id, got.Processed, mm.processed)
	}
	if len(got.Props) != len(mm.props) {
		return fmt.Errorf("message %d: %d props, want %d", mm.id, len(got.Props), len(mm.props))
	}
	for k, want := range mm.props {
		if v, ok := got.Props[k]; !ok || v.StringValue() != want {
			return fmt.Errorf("message %d: prop %q=%q, want %q", mm.id, k, v.StringValue(), want)
		}
	}
	doc, err := ms.Doc(mm.id)
	if err != nil {
		return fmt.Errorf("message %d: doc: %w", mm.id, err)
	}
	if doc.StringValue() != mm.text {
		return fmt.Errorf("message %d: payload text mismatch", mm.id)
	}
	return nil
}

const tortureIters = 40

// tortureReplayBound caps the records any single recovery may replay. The
// workload checkpoints every 11th iteration, and one iteration logs a few
// dozen records at most (two enqueues with properties plus status updates),
// so replay after any crash is bounded by ~11 iterations of log plus the
// last checkpoint's own bracket records and full-page images. The full
// 40-iteration history is several times this bound: a regression that stops
// advancing the log head trips it immediately.
const tortureReplayBound = 700

// TestTortureNoFaults is the baseline: the workload with no faults armed
// must pass its own checker, and must generate enough distinct crash
// points across all five site categories for the sweep to be meaningful.
func TestTortureNoFaults(t *testing.T) {
	fs := store.NewFaultFS(1)
	ms, err := Open(tortureDir, tortureOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	mdl := newModel()
	if err := runTortureWorkload(ms, mdl, tortureIters); err != nil {
		t.Fatal(err)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	trace := fs.Trace()
	if len(trace) < 50 {
		t.Fatalf("workload produced only %d crash points, want >= 50", len(trace))
	}
	cats := map[string]int{}
	wal := func(p string) bool {
		return strings.HasSuffix(p, ".log") && strings.Contains(p, "wal.")
	}
	for _, p := range trace {
		switch {
		case wal(p.Path) && p.Op == "write":
			cats["wal-append"]++ // includes the header write of each new segment
		case wal(p.Path) && p.Op == "sync":
			cats["group-commit-fsync"]++ // includes segment seals and redo publishes
		case wal(p.Path) && p.Op == "remove":
			cats["segment-recycle"]++ // checkpoint head advance deletes dead segments
		case strings.HasSuffix(p.Path, "data.db") && p.Op == "write" && p.Off < store.PageSize:
			cats["header-rewrite"]++
		case strings.HasSuffix(p.Path, "data.db") && p.Op == "write":
			cats["page-writeback"]++
		case strings.HasSuffix(p.Path, "data.db") && p.Op == "sync":
			cats["checkpoint-sync"]++
		}
	}
	for _, want := range []string{"wal-append", "group-commit-fsync", "segment-recycle", "header-rewrite", "page-writeback", "checkpoint-sync"} {
		if cats[want] == 0 {
			t.Errorf("no crash points in category %s (have %v)", want, cats)
		}
	}
	t.Logf("crash points: %d total, %v", len(trace), cats)

	// Reopen and re-verify: clean shutdown state passes the checker too.
	ms2, err := Open(tortureDir, tortureOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	if err := checkRecovered(ms2, mdl); err != nil {
		t.Fatal(err)
	}
}

// TestTortureCrashSweep reruns the workload once per mutation operation,
// crashing exactly there, and verifies recovery invariants each time.
// Under -short a stride samples ~30 points; the full sweep covers all.
func TestTortureCrashSweep(t *testing.T) {
	// First pass: enumerate.
	fs := store.NewFaultFS(1)
	ms, err := Open(tortureDir, tortureOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if err := runTortureWorkload(ms, newModel(), tortureIters); err != nil {
		t.Fatal(err)
	}
	ms.Close()
	total := fs.Ops()

	stride := 1
	if testing.Short() {
		stride = total/30 + 1
	}
	for k := 1; k <= total; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-%03d", k), func(t *testing.T) {
			fs := store.NewFaultFS(int64(42 + k))
			fs.CrashAt(k)
			mdl := newModel()
			ms, err := Open(tortureDir, tortureOptions(fs))
			if err == nil {
				err = runTortureWorkload(ms, mdl, tortureIters)
				if err == nil {
					// The tail crash points live in Close's final checkpoint.
					err = ms.Close()
				}
				if err != nil {
					ms.Crash() // release resources; the FaultFS keeps the disk state
				}
			}
			if !fs.Crashed() {
				if err == nil {
					t.Fatalf("workload finished without hitting crash point %d", k)
				}
				t.Fatalf("error before the crash point: %v", err)
			}
			// err may be nil even though the crash fired: segment-recycle
			// removes tolerate failure (a stale segment is re-deleted at the
			// next open), so a crash landing on one lets the run complete.

			fs.ClearFault()
			ms2, err := Open(tortureDir, tortureOptions(fs))
			if err != nil {
				t.Fatalf("reopen after crash at %d: %v", k, err)
			}
			defer ms2.Close()
			if err := checkRecovered(ms2, mdl); err != nil {
				t.Fatalf("invariant violation after crash at %d: %v", k, err)
			}
			// Bounded recovery: replay covers at most the records since the
			// last complete checkpoint (the workload checkpoints every 11th
			// iteration), never the whole history back to the log start.
			if replayed, _ := ms2.PageStore().RecoveryReplayed(); replayed > tortureReplayBound {
				t.Fatalf("crash at %d: recovery replayed %d records, bound %d — checkpoint head advance is not holding", k, replayed, tortureReplayBound)
			}

			// Recovery is idempotent: a second crashless reopen agrees.
			if err := ms2.Close(); err != nil {
				t.Fatalf("close after recovery: %v", err)
			}
			ms3, err := Open(tortureDir, tortureOptions(fs))
			if err != nil {
				t.Fatalf("second reopen: %v", err)
			}
			defer ms3.Close()
			if err := checkRecovered(ms3, mdl); err != nil {
				t.Fatalf("post-recovery reopen violation: %v", err)
			}
		})
	}
}

// TestTortureTransientAbsorbed injects a transient I/O error on every 13th
// operation; the bounded retry in the VFS layer must absorb all of them —
// the workload and its checker behave exactly as with no faults.
func TestTortureTransientAbsorbed(t *testing.T) {
	fs := store.NewFaultFS(7)
	fs.TransientEvery(13)
	ms, err := Open(tortureDir, tortureOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	mdl := newModel()
	if err := runTortureWorkload(ms, mdl, tortureIters); err != nil {
		t.Fatalf("transient faults should be retried away: %v", err)
	}
	if err := checkRecovered(ms, mdl); err != nil {
		t.Fatal(err)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTorturePermanentFailure kills the device mid-workload: writes fail
// permanently, the store reports a sticky disk error, commits fail without
// panicking, and committed data stays readable.
func TestTorturePermanentFailure(t *testing.T) {
	fs := store.NewFaultFS(3)
	ms, err := Open(tortureDir, tortureOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Crash()
	mdl := newModel()
	if err := runTortureWorkload(ms, mdl, 10); err != nil {
		t.Fatal(err)
	}
	fs.FailWritesAfter(fs.Ops() + 1)
	err = runTortureWorkload(ms, newModel(), tortureIters)
	if err == nil {
		t.Fatal("writes should fail after the device died")
	}
	if !store.IsPermanent(err) && !errors.Is(err, store.ErrDiskFailure) {
		t.Fatalf("want a permanent disk error, got: %v", err)
	}
	if ms.DiskError() == nil {
		t.Fatal("store should report a sticky disk error")
	}
	// Reads still serve what committed before the failure.
	for _, id := range mdl.order {
		mm := mdl.msgs[id]
		if mm.removed {
			continue
		}
		if _, err := ms.Doc(id); err != nil {
			t.Fatalf("read of committed message %d failed in degraded state: %v", id, err)
		}
	}
}

// TestTortureDiskFull exhausts the write budget: commits fail with
// ErrDiskFull (a permanent condition for the engine) and nothing panics.
func TestTortureDiskFull(t *testing.T) {
	fs := store.NewFaultFS(5)
	ms, err := Open(tortureDir, tortureOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Crash()
	mdl := newModel()
	if err := runTortureWorkload(ms, mdl, 10); err != nil {
		t.Fatal(err)
	}
	fs.SetWriteBudget(4096)
	err = runTortureWorkload(ms, newModel(), tortureIters)
	if err == nil {
		t.Fatal("writes should fail once the disk fills")
	}
	if !errors.Is(err, store.ErrDiskFull) {
		t.Fatalf("want ErrDiskFull, got: %v", err)
	}
	if !store.IsPermanent(err) {
		t.Fatal("disk-full must classify as permanent so the engine degrades")
	}
}
