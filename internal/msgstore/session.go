package msgstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"demaq/internal/store"
)

// Reliable-messaging session state must survive restarts together with the
// messages it guards: the gateway acks a transfer only after the enqueue is
// durable, and the dedup window that suppresses retransmits of an acked
// transfer has to come back after a crash — otherwise the node silently
// re-admits duplicates and exactly-once degrades to at-least-once. Session
// snapshots are therefore persisted in a system heap, written inside the
// same page-store transaction as the enqueue they protect (Txn.PutSession),
// so "message durable" and "retransmit suppressed" are one atomic fact.
//
// Records are small append-only snapshots: each put appends a full versioned
// image of one session; the newest version per (kind, endpoint, peer) key
// wins at load, and a key's stale versions are compacted away once enough
// accumulate. The "sys:" prefix keeps the heap invisible to queue and
// collection loading.

const (
	sessionsHeapName = "sys:sessions"

	// SessionWindowWords bounds the persisted dedup bitmap: 16 words =
	// 1024 sequence numbers below the receive high-water mark.
	SessionWindowWords = 16

	// sessionCompactAfter triggers compaction of a key's stale on-disk
	// versions once that many records accumulate.
	sessionCompactAfter = 16
)

// SessionKind distinguishes sender from receiver session records.
type SessionKind uint8

// Session kinds.
const (
	SessionSend SessionKind = 0 // Seq is the reserved next-seq upper bound
	SessionRecv SessionKind = 1 // Seq is the receive high-water mark
)

// SessionState is one reliable-messaging session snapshot. For send
// sessions, Endpoint is the local source address and Seq the exclusive
// upper bound of the reserved sequence block (the restarted sender resumes
// from Seq, skipping at most one unused block). For receive sessions,
// Endpoint is the local subscription address, Peer the remote sender's
// source, Seq the highest admitted sequence number, and Window the dedup
// bitmap below it: bit i of the bitmap (word i/64, bit i%64) is set iff
// sequence Seq-i was admitted.
type SessionState struct {
	Kind     SessionKind
	Endpoint string
	Peer     string
	Seq      uint64
	Window   []uint64
}

type sessionKey struct {
	kind     SessionKind
	endpoint string
	peer     string
}

type sessionRec struct {
	rid store.RID
	ver uint64
}

type sessionEntry struct {
	state SessionState
	ver   uint64
	recs  []sessionRec // every on-disk version of this key, for compaction
}

func encodeSession(ver uint64, s SessionState) []byte {
	// Trailing all-ones words (the oldest window region, fully admitted)
	// are elided: a sequence older than the persisted window is treated as
	// a long-acked duplicate by the receiver, which is exactly what an
	// all-ones word says. In the steady in-order case this shrinks the
	// per-enqueue snapshot from the full bitmap to a handful of bytes.
	win := s.Window
	for len(win) > 0 && win[len(win)-1] == ^uint64(0) {
		win = win[:len(win)-1]
	}
	out := make([]byte, 0, 32+len(s.Endpoint)+len(s.Peer)+8*len(win))
	out = binary.LittleEndian.AppendUint64(out, ver)
	out = append(out, byte(s.Kind))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Endpoint)))
	out = append(out, s.Endpoint...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Peer)))
	out = append(out, s.Peer...)
	out = binary.LittleEndian.AppendUint64(out, s.Seq)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(win)))
	for _, w := range win {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out
}

func decodeSession(data []byte) (uint64, SessionState, error) {
	var s SessionState
	if len(data) < 13 {
		return 0, s, fmt.Errorf("msgstore: short session record")
	}
	ver := binary.LittleEndian.Uint64(data)
	s.Kind = SessionKind(data[8])
	off := 9
	el := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if off+el+2 > len(data) {
		return 0, s, fmt.Errorf("msgstore: truncated session endpoint")
	}
	s.Endpoint = string(data[off : off+el])
	off += el
	pl := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if off+pl+10 > len(data) {
		return 0, s, fmt.Errorf("msgstore: truncated session peer")
	}
	s.Peer = string(data[off : off+pl])
	off += pl
	s.Seq = binary.LittleEndian.Uint64(data[off:])
	off += 8
	nw := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if off+8*nw > len(data) {
		return 0, s, fmt.Errorf("msgstore: truncated session window")
	}
	if nw > 0 {
		s.Window = make([]uint64, nw)
		for i := range s.Window {
			s.Window[i] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
	}
	return ver, s, nil
}

// PutSession stages a session snapshot to be persisted atomically with the
// transaction's other effects — the enqueue whose retransmit it suppresses.
// The window slice is copied; the caller may keep mutating its own.
func (t *Txn) PutSession(s SessionState) {
	if len(s.Window) > 0 {
		s.Window = append([]uint64(nil), s.Window...)
	}
	t.sessions = append(t.sessions, s)
}

// PutSession durably writes one session snapshot in its own page-store
// transaction. Send-side sequence reservations use it: the reservation must
// be durable before the first message of the block goes on the wire.
func (ms *Store) PutSession(s SessionState) error {
	if len(s.Window) > 0 {
		s.Window = append([]uint64(nil), s.Window...)
	}
	ver := ms.sessVer.Add(1)
	pt := ms.ps.Begin()
	rid, err := ms.writeSession(pt, ver, s)
	if err != nil {
		pt.Abort()
		return err
	}
	if err := pt.Commit(); err != nil {
		return err
	}
	ms.publishSession(s, ver, rid)
	return nil
}

// writeSession appends one versioned session snapshot to the system heap
// inside pt. Called from the persist phase without msgstore locks; heap
// creation is idempotent under the page store's own lock.
func (ms *Store) writeSession(pt *store.Txn, ver uint64, s SessionState) (store.RID, error) {
	h, ok := ms.ps.Heap(sessionsHeapName)
	if !ok {
		var err error
		h, err = ms.ps.CreateHeap(sessionsHeapName)
		if err != nil {
			return store.RID{}, err
		}
	}
	return pt.Insert(h, encodeSession(ver, s))
}

// publishSession installs a committed snapshot in the in-memory map (newest
// version wins — concurrent committers may publish out of version order) and
// hands the key's stale on-disk versions to the background compactor once
// enough accumulate. The delete is pure garbage collection off the commit
// path: a dropped or failed delete only leaves stale low-version records
// that the next load ignores (and re-remembers for compaction).
func (ms *Store) publishSession(s SessionState, ver uint64, rid store.RID) {
	key := sessionKey{kind: s.Kind, endpoint: s.Endpoint, peer: s.Peer}
	ms.sessMu.Lock()
	e := ms.sessions[key]
	if e == nil {
		e = &sessionEntry{}
		ms.sessions[key] = e
	}
	e.recs = append(e.recs, sessionRec{rid: rid, ver: ver})
	if ver > e.ver {
		e.ver = ver
		e.state = s
	}
	if len(e.recs) > sessionCompactAfter {
		var stale []store.RID
		keep := e.recs[:0]
		for _, r := range e.recs {
			if r.ver == e.ver {
				keep = append(keep, r)
			} else {
				stale = append(stale, r.rid)
			}
		}
		e.recs = keep
		if !ms.sessClosed {
			select {
			case ms.sessGC <- stale:
			default:
				// Compactor backed up: skip this round. The records stay on
				// disk until the next Open re-collects them.
			}
		}
	}
	ms.sessMu.Unlock()
}

// sessionCompactor deletes superseded session snapshots in the background;
// the admit path never pays the delete commit. Runs until Close.
func (ms *Store) sessionCompactor() {
	defer close(ms.sessGCDone)
	for stale := range ms.sessGC {
		if h, ok := ms.ps.Heap(sessionsHeapName); ok {
			_ = ms.ps.BatchDelete(h, stale) // GC only; stale versions are harmless
		}
	}
}

// loadSessions rebuilds the session map from the system heap at Open:
// newest version per key wins, every on-disk version is remembered for
// compaction, and the version counter resumes past the maximum seen.
func (ms *Store) loadSessions() error {
	h, ok := ms.ps.Heap(sessionsHeapName)
	if !ok {
		return nil
	}
	var maxVer uint64
	err := ms.ps.Scan(h, func(rid store.RID, data []byte) bool {
		ver, s, err := decodeSession(data)
		if err != nil {
			return true // skip corrupt records; superseded snapshots carry the state
		}
		key := sessionKey{kind: s.Kind, endpoint: s.Endpoint, peer: s.Peer}
		e := ms.sessions[key]
		if e == nil {
			e = &sessionEntry{}
			ms.sessions[key] = e
		}
		e.recs = append(e.recs, sessionRec{rid: rid, ver: ver})
		if ver > e.ver || (e.ver == 0 && e.state.Endpoint == "") {
			e.ver = ver
			e.state = s
		}
		if ver > maxVer {
			maxVer = ver
		}
		return true
	})
	if err != nil {
		return err
	}
	ms.sessVer.Store(maxVer)
	return nil
}

// SessionSnapshot returns the current state of one session key.
func (ms *Store) SessionSnapshot(kind SessionKind, endpoint, peer string) (SessionState, bool) {
	ms.sessMu.Lock()
	defer ms.sessMu.Unlock()
	e := ms.sessions[sessionKey{kind: kind, endpoint: endpoint, peer: peer}]
	if e == nil {
		return SessionState{}, false
	}
	return e.state, true
}

// RecvSessionStates returns the receive sessions of one local endpoint —
// one per remote peer, sorted by peer for determinism.
func (ms *Store) RecvSessionStates(endpoint string) []SessionState {
	ms.sessMu.Lock()
	var out []SessionState
	for k, e := range ms.sessions {
		if k.kind == SessionRecv && k.endpoint == endpoint {
			out = append(out, e.state)
		}
	}
	ms.sessMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
