package msgstore

import (
	"encoding/binary"
	"fmt"

	"demaq/internal/store"
)

// Slice resets must survive restarts with the transaction that performed
// them: losing a reset would make already-dismissed messages visible in
// their slices again, changing application behavior (Sec. 2.3.2). Resets
// are therefore persisted as small append-only event records
// (slicing, key, watermark) in a system heap, written inside the same
// page-store transaction as the triggering message's other effects.

const resetsHeapName = "sys:resets"

// ResetEvent is one persisted slice reset.
type ResetEvent struct {
	Slicing   string
	Key       string
	Watermark MsgID
}

func encodeReset(e ResetEvent) []byte {
	out := make([]byte, 0, 12+len(e.Slicing)+len(e.Key))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Slicing)))
	out = append(out, e.Slicing...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Key)))
	out = append(out, e.Key...)
	out = binary.LittleEndian.AppendUint64(out, uint64(e.Watermark))
	return out
}

func decodeReset(data []byte) (ResetEvent, error) {
	var e ResetEvent
	if len(data) < 4 {
		return e, fmt.Errorf("msgstore: short reset event")
	}
	sl := int(binary.LittleEndian.Uint16(data))
	off := 2
	if off+sl+2 > len(data) {
		return e, fmt.Errorf("msgstore: truncated reset event")
	}
	e.Slicing = string(data[off : off+sl])
	off += sl
	kl := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if off+kl+8 > len(data) {
		return e, fmt.Errorf("msgstore: truncated reset event")
	}
	e.Key = string(data[off : off+kl])
	off += kl
	e.Watermark = MsgID(binary.LittleEndian.Uint64(data[off:]))
	return e, nil
}

// RecordReset stages a persistent slice-reset event. The watermark is
// the current message-ID high-water mark, captured at commit time.
func (t *Txn) RecordReset(slicing, key string) {
	t.resets = append(t.resets, ResetEvent{Slicing: slicing, Key: key})
}

// writeReset appends one reset event to the system heap inside pt. It is
// called from the persist phase of Commit without any msgstore lock held;
// heap creation is idempotent under the page store's own lock.
func (ms *Store) writeReset(pt *store.Txn, e ResetEvent) error {
	h, ok := ms.ps.Heap(resetsHeapName)
	if !ok {
		var err error
		h, err = ms.ps.CreateHeap(resetsHeapName)
		if err != nil {
			return err
		}
	}
	_, err := pt.Insert(h, encodeReset(e))
	return err
}

// ResetEvents replays all persisted reset events (startup).
func (ms *Store) ResetEvents() ([]ResetEvent, error) {
	h, ok := ms.ps.Heap(resetsHeapName)
	if !ok {
		return nil, nil
	}
	var out []ResetEvent
	err := ms.ps.Scan(h, func(_ store.RID, data []byte) bool {
		if e, err := decodeReset(data); err == nil {
			out = append(out, e)
		}
		return true
	})
	return out, err
}
