package msgstore

import (
	"testing"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

const formatTestDoc = `<order xmlns:p="urn:proc"><p:item qty="3">widget &amp; bolt</p:item><!--note--><state>open</state></order>`

// TestBinaryPayloadRoundTrip exercises the default storage format end to
// end: enqueue parses once and persists the encoded tree; a cold-cache Doc
// is a structural decode that reproduces the exact tree and wire text.
func TestBinaryPayloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ms, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if _, err := ms.CreateQueue("q", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	want := xmldom.MustParse(formatTestDoc)
	id := enqueue(t, ms, "q", formatTestDoc, map[string]xdm.Value{"k": xdm.NewString("v")})

	ms.FlushDocCache()
	doc, err := ms.Doc(id)
	if err != nil {
		t.Fatal(err)
	}
	if !xmldom.DeepEqual(want, doc) {
		t.Fatalf("rehydrated tree differs:\nwant %s\ngot  %s", xmldom.Serialize(want), xmldom.Serialize(doc))
	}
	if a, b := xmldom.Serialize(want), xmldom.Serialize(doc); a != b {
		t.Fatalf("wire text changed: %q vs %q", a, b)
	}
	st := ms.Stats()
	if st.PayloadEncodedBytes == 0 {
		t.Fatalf("no encoded payload bytes accounted: %+v", st)
	}
	if st.PayloadTextBytes != 0 {
		t.Fatalf("text bytes accounted in binary mode: %+v", st)
	}
	if st.DocCacheMisses == 0 {
		t.Fatalf("cold read did not count a cache miss: %+v", st)
	}

	// The processed write rewrites the status byte; the format bit must
	// survive it, across a crash-recovery reopen.
	tx := ms.Begin()
	tx.MarkProcessed(id)
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ms.Close()
	ms2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	m, ok := ms2.Get(id)
	if !ok || !m.Processed {
		t.Fatalf("processed flag lost across reopen: %+v", m)
	}
	doc, err = ms2.Doc(id)
	if err != nil {
		t.Fatal(err)
	}
	if !xmldom.DeepEqual(want, doc) {
		t.Fatal("rehydration after reopen differs")
	}
}

// TestTextPayloadBaseline keeps the pre-E12 text format reachable and
// interoperable: a store written with TextPayloads reopens in binary mode
// and serves both old text records and new binary ones.
func TestTextPayloadBaseline(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.TextPayloads = true
	ms, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.CreateQueue("q", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	textID := enqueue(t, ms, "q", formatTestDoc, nil)
	if st := ms.Stats(); st.PayloadTextBytes == 0 || st.PayloadEncodedBytes != 0 {
		t.Fatalf("text mode accounting wrong: %+v", st)
	}
	ms.FlushDocCache()
	if _, err := ms.Doc(textID); err != nil {
		t.Fatal(err)
	}
	ms.Close()

	ms, err = Open(dir, DefaultOptions()) // binary mode
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	binID := enqueue(t, ms, "q", formatTestDoc, nil)
	ms.FlushDocCache()
	want := xmldom.MustParse(formatTestDoc)
	for _, id := range []MsgID{textID, binID} {
		doc, err := ms.Doc(id)
		if err != nil {
			t.Fatalf("message %d: %v", id, err)
		}
		if !xmldom.DeepEqual(want, doc) {
			t.Fatalf("message %d: mixed-format rehydration differs", id)
		}
	}
}

// TestDocCacheCounters checks hit/miss/eviction accounting and the
// configured capacity surfacing through Stats.
func TestDocCacheCounters(t *testing.T) {
	opts := DefaultOptions()
	opts.CacheDocs = 2
	ms, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if _, err := ms.CreateQueue("q", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	var ids []MsgID
	for i := 0; i < 3; i++ {
		ids = append(ids, enqueue(t, ms, "q", `<m><v>x</v></m>`, nil))
	}
	base := ms.Stats()
	if base.DocCacheCap != 2 {
		t.Fatalf("capacity not surfaced: %+v", base)
	}
	// Publishing through the cache (capacity 2) evicted the oldest of the
	// three enqueued docs.
	if base.DocCacheEvictions == 0 {
		t.Fatalf("expected evictions at capacity 2: %+v", base)
	}
	if _, err := ms.Doc(ids[2]); err != nil { // resident → hit
		t.Fatal(err)
	}
	if st := ms.Stats(); st.DocCacheHits != base.DocCacheHits+1 {
		t.Fatalf("hit not counted: %+v", st)
	}
	if _, err := ms.Doc(ids[0]); err != nil { // evicted → miss + decode
		t.Fatal(err)
	}
	if st := ms.Stats(); st.DocCacheMisses != base.DocCacheMisses+1 {
		t.Fatalf("miss not counted: %+v", st)
	}
	ms.FlushDocCache()
	if st := ms.Stats(); st.DocCacheSize != 0 {
		t.Fatalf("flush left %d entries", st.DocCacheSize)
	}
}

// TestCollectionsBinaryFormat checks master-data collections persist in
// the binary encoding and recover across a reopen.
func TestCollectionsBinaryFormat(t *testing.T) {
	dir := t.TempDir()
	ms, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.CreateCollection("rates"); err != nil {
		t.Fatal(err)
	}
	want := xmldom.MustParse(`<rate cur="EUR">1.09</rate>`)
	if err := ms.AddToCollection("rates", want); err != nil {
		t.Fatal(err)
	}
	if st := ms.Stats(); st.PayloadEncodedBytes == 0 {
		t.Fatalf("collection write not accounted as encoded: %+v", st)
	}
	ms.Close()
	ms, err = Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	docs := ms.Collection("rates")
	if len(docs) != 1 || !xmldom.DeepEqual(want, docs[0]) {
		t.Fatalf("collection recovery differs: %d docs", len(docs))
	}
}
