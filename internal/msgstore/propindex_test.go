package msgstore

import (
	"fmt"
	"testing"
	"time"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

func propIDs(ms *Store, prop, value string) []MsgID {
	return ms.PropertyIDsAfter(prop, value, 0, nil)
}

// TestPropertyIndexBasics covers insert-on-publish, value isolation,
// ascending order, range windows, and delete-on-Remove.
func TestPropertyIndexBasics(t *testing.T) {
	ms := openTemp(t)
	if _, err := ms.CreateQueue("q", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	var ids []MsgID
	for i := 0; i < 10; i++ {
		id := enqueue(t, ms, "q", `<m/>`, map[string]xdm.Value{
			"customer": xdm.NewString(fmt.Sprintf("c%d", i%2)),
			"region":   xdm.NewString("emea"),
		})
		ids = append(ids, id)
	}
	if !ms.PropertyIndexEnabled() {
		t.Fatal("index should be on by default")
	}
	c0 := propIDs(ms, "customer", "c0")
	if len(c0) != 5 {
		t.Fatalf("customer=c0: %v", c0)
	}
	for i := 1; i < len(c0); i++ {
		if c0[i] <= c0[i-1] {
			t.Fatalf("not ascending: %v", c0)
		}
	}
	if got := propIDs(ms, "customer", "c2"); len(got) != 0 {
		t.Fatalf("unknown value matched: %v", got)
	}
	if got := propIDs(ms, "region", "emea"); len(got) != 10 {
		t.Fatalf("region: %v", got)
	}

	// Range window [ids[2], ids[7]].
	win := ms.PropertyIDsRange("region", "emea", ids[2], ids[7], nil)
	if len(win) != 6 || win[0] != ids[2] || win[5] != ids[7] {
		t.Fatalf("window: %v", win)
	}
	// Open-ended upper bound.
	all := ms.PropertyIDsRange("region", "emea", 0, ^MsgID(0), nil)
	if len(all) != 10 {
		t.Fatalf("open window: %v", all)
	}

	// After, mid-stream.
	tail := ms.PropertyIDsAfter("region", "emea", ids[6], nil)
	if len(tail) != 3 || tail[0] != ids[7] {
		t.Fatalf("after: %v", tail)
	}

	// Remove drops postings.
	if err := ms.Remove("q", ids[:4]); err != nil {
		t.Fatal(err)
	}
	if got := propIDs(ms, "region", "emea"); len(got) != 6 || got[0] != ids[4] {
		t.Fatalf("after remove: %v", got)
	}
}

// TestPropertyIndexRebuild restarts the store and checks the index is
// reconstructed from the heaps like the rest of the derived state.
func TestPropertyIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	ms, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.CreateQueue("q", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	var ids []MsgID
	for i := 0; i < 6; i++ {
		ids = append(ids, enqueue(t, ms, "q", `<m/>`, map[string]xdm.Value{
			"k": xdm.NewString("v"),
		}))
	}
	if err := ms.Remove("q", ids[:2]); err != nil {
		t.Fatal(err)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}

	ms2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	got := ms2.PropertyIDsAfter("k", "v", 0, nil)
	if len(got) != 4 || got[0] != ids[2] {
		t.Fatalf("rebuilt index: %v (want %v)", got, ids[2:])
	}
}

// TestPropertyIndexDisabled pins the scan-baseline knob: no postings, no
// results, and PropertyIndexEnabled reports false so callers fall back.
func TestPropertyIndexDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.NoPropertyIndex = true
	ms, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if _, err := ms.CreateQueue("q", Transient, 0); err != nil {
		t.Fatal(err)
	}
	enqueue(t, ms, "q", `<m/>`, map[string]xdm.Value{"k": xdm.NewString("v")})
	if ms.PropertyIndexEnabled() {
		t.Fatal("index should be disabled")
	}
	if got := propIDs(ms, "k", "v"); got != nil {
		t.Fatalf("disabled index returned %v", got)
	}
}

// TestPropertyIndexSkipsSystemProps pins that "demaq:"-namespaced properties
// (near-unique timestamps, rule provenance) stay out of the index.
func TestPropertyIndexSkipsSystemProps(t *testing.T) {
	ms := openTemp(t)
	if _, err := ms.CreateQueue("q", Transient, 0); err != nil {
		t.Fatal(err)
	}
	tx := ms.Begin()
	if _, err := tx.Enqueue("q", xmldom.MustParse(`<m/>`), map[string]xdm.Value{
		"demaq:rule": xdm.NewString("r1"),
		"user":       xdm.NewString("u1"),
	}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := propIDs(ms, "demaq:rule", "r1"); len(got) != 0 {
		t.Fatalf("system property indexed: %v", got)
	}
	if got := propIDs(ms, "user", "u1"); len(got) != 1 {
		t.Fatalf("user property missing: %v", got)
	}
}
