package msgstore

import (
	"container/list"
	"sync"

	"demaq/internal/xmldom"
)

// docCache is an LRU cache of materialized message documents. Store.Doc
// hands the same *xmldom.Node to every caller — concurrent rule
// evaluations of the same message share one tree without copying or
// locking. That is sound only because sealed xmldom trees are deeply
// immutable (see the contract on xmldom.Node): readers traverse, and
// anything that needs an owned tree (do enqueue payloads, constructor
// content) deep-copies. The contract is enforced under -race by
// TestDocCacheSharedEvaluationRace.
type docCache struct {
	mu  sync.Mutex
	cap int
	lru *list.List
	m   map[MsgID]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	id  MsgID
	doc *xmldom.Node
}

func newDocCache(capacity int) *docCache {
	return &docCache{cap: capacity, lru: list.New(), m: map[MsgID]*list.Element{}}
}

func (c *docCache) get(id MsgID) (*xmldom.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[id]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).doc, true
	}
	c.misses++
	return nil, false
}

func (c *docCache) put(id MsgID, doc *xmldom.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[id]; ok {
		el.Value.(*cacheEntry).doc = doc
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&cacheEntry{id: id, doc: doc})
	c.m[id] = el
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).id)
		c.evictions++
	}
}

func (c *docCache) drop(id MsgID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[id]; ok {
		c.lru.Remove(el)
		delete(c.m, id)
	}
}

// clear empties the cache without touching the counters.
func (c *docCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	clear(c.m)
}

// stats snapshots the cache counters into a Stats value.
func (c *docCache) stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		DocCacheHits:      c.hits,
		DocCacheMisses:    c.misses,
		DocCacheEvictions: c.evictions,
		DocCacheSize:      c.lru.Len(),
		DocCacheCap:       c.cap,
	}
}
