package msgstore

import (
	"container/list"
	"sync"

	"demaq/internal/xmldom"
)

// docCache is a lock-striped LRU cache of materialized message documents.
// Store.Doc hands the same *xmldom.Node to every caller — concurrent rule
// evaluations of the same message share one tree without copying or
// locking. That is sound only because sealed xmldom trees are deeply
// immutable (see the contract on xmldom.Node): readers traverse, and
// anything that needs an owned tree (do enqueue payloads, constructor
// content) deep-copies. The contract is enforced under -race by
// TestDocCacheSharedEvaluationRace.
//
// Striping (experiment E14): entries are partitioned by MsgID across up to
// maxCacheShards independent LRU shards, each behind its own mutex, so the
// per-Doc cache probe of every worker no longer funnels through one global
// lock. The configured capacity is split exactly across the shards (small
// capacities use fewer shards so per-shard capacity stays ≥ 1), which
// keeps the aggregate size/capacity accounting exact; hit/miss/eviction
// counters are per-shard and summed on Stats.
type docCache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	lru *list.List
	m   map[MsgID]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	id  MsgID
	doc *xmldom.Node
	// fp != 0: doc is a partial tree decoded under the projection with this
	// fingerprint (spans skipped); pruned lists the element local names
	// inside the spans. fp == 0: doc is the complete document.
	fp     uint64
	pruned []string
}

const maxCacheShards = 16

func newDocCache(capacity int) *docCache {
	if capacity < 1 {
		capacity = 1
	}
	n := maxCacheShards
	if capacity < n {
		n = capacity
	}
	c := &docCache{shards: make([]cacheShard, n)}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = base
		if i < rem {
			sh.cap++
		}
		sh.lru = list.New()
		sh.m = map[MsgID]*list.Element{}
	}
	return c
}

func (c *docCache) shard(id MsgID) *cacheShard {
	return &c.shards[uint64(id)%uint64(len(c.shards))]
}

// get returns a complete cached document. Partial entries (projected
// decodes) count as misses: the caller needs the full tree and will
// materialize and re-put it.
func (c *docCache) get(id MsgID) (*xmldom.Node, bool) {
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[id]; ok {
		e := el.Value.(*cacheEntry)
		if e.fp == 0 {
			sh.hits++
			sh.lru.MoveToFront(el)
			return e.doc, true
		}
	}
	sh.misses++
	return nil, false
}

// getProjected returns a cached document usable under the given projection
// fingerprint: either a complete document (always usable) or a partial one
// decoded under the same fingerprint.
func (c *docCache) getProjected(id MsgID, fp uint64) (*xmldom.Node, []string, bool) {
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[id]; ok {
		e := el.Value.(*cacheEntry)
		if e.fp == 0 || e.fp == fp {
			sh.hits++
			sh.lru.MoveToFront(el)
			return e.doc, e.pruned, true
		}
	}
	sh.misses++
	return nil, nil, false
}

func (c *docCache) put(id MsgID, doc *xmldom.Node) {
	c.putEntry(id, doc, 0, nil)
}

// putProjected caches a partial document decoded under a projection.
func (c *docCache) putProjected(id MsgID, doc *xmldom.Node, fp uint64, pruned []string) {
	c.putEntry(id, doc, fp, pruned)
}

func (c *docCache) putEntry(id MsgID, doc *xmldom.Node, fp uint64, pruned []string) {
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[id]; ok {
		e := el.Value.(*cacheEntry)
		if fp != 0 && e.fp == 0 {
			// Never replace a complete document with a partial one.
			sh.lru.MoveToFront(el)
			return
		}
		e.doc, e.fp, e.pruned = doc, fp, pruned
		sh.lru.MoveToFront(el)
		return
	}
	el := sh.lru.PushFront(&cacheEntry{id: id, doc: doc, fp: fp, pruned: pruned})
	sh.m[id] = el
	for sh.lru.Len() > sh.cap {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		delete(sh.m, back.Value.(*cacheEntry).id)
		sh.evictions++
	}
}

func (c *docCache) drop(id MsgID) {
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[id]; ok {
		sh.lru.Remove(el)
		delete(sh.m, id)
	}
}

// clear empties the cache without touching the counters.
func (c *docCache) clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.lru.Init()
		clear(sh.m)
		sh.mu.Unlock()
	}
}

// stats sums the per-shard counters into a Stats value. Each shard is
// snapshotted under its own mutex; the aggregate is exact per shard.
func (c *docCache) stats() Stats {
	var st Stats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.DocCacheHits += sh.hits
		st.DocCacheMisses += sh.misses
		st.DocCacheEvictions += sh.evictions
		st.DocCacheSize += sh.lru.Len()
		st.DocCacheCap += sh.cap
		sh.mu.Unlock()
	}
	return st
}
