package msgstore

import (
	"fmt"
	"testing"
	"time"

	"demaq/internal/xmldom"
)

// TestBatchCommitMultiQueue stages many enqueues across several queues
// plus a batch of processed flags in one transaction and verifies the
// grouped publish: every queue list stays in ID order, every message is
// resolvable by ID, and the flags landed.
func TestBatchCommitMultiQueue(t *testing.T) {
	opts := DefaultOptions()
	opts.Store.SyncCommits = false
	ms, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	queues := []string{"qa", "qb", "qc"}
	for _, q := range queues {
		if _, err := ms.CreateQueue(q, Persistent, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Seed messages to mark processed in the same batch commit.
	seed := ms.Begin()
	var seeded []MsgID
	for i := 0; i < 10; i++ {
		id, err := seed.Enqueue("qa", xmldom.MustParse(fmt.Sprintf(`<seed n="%d"/>`, i)), nil, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		seeded = append(seeded, id)
	}
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	// One batch transaction: 60 enqueues interleaved across 3 queues plus
	// all 10 processed flags.
	tx := ms.Begin()
	perQueue := map[string][]MsgID{}
	for i := 0; i < 60; i++ {
		q := queues[i%len(queues)]
		id, err := tx.Enqueue(q, xmldom.MustParse(fmt.Sprintf(`<m n="%d"/>`, i)), nil, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		perQueue[q] = append(perQueue[q], id)
	}
	if err := tx.MarkProcessedAll(seeded); err != nil {
		t.Fatal(err)
	}
	out, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 60 {
		t.Fatalf("commit returned %d messages, want 60", len(out))
	}

	for _, q := range queues {
		msgs, err := ms.Messages(q)
		if err != nil {
			t.Fatal(err)
		}
		want := perQueue[q]
		if q == "qa" {
			want = append(append([]MsgID{}, seeded...), want...)
		}
		if len(msgs) != len(want) {
			t.Fatalf("queue %s: %d messages, want %d", q, len(msgs), len(want))
		}
		for i, m := range msgs {
			if m.ID != want[i] {
				t.Fatalf("queue %s out of order at %d: %d want %d", q, i, m.ID, want[i])
			}
			if _, ok := ms.Get(m.ID); !ok {
				t.Fatalf("message %d not resolvable by ID", m.ID)
			}
		}
	}
	for _, id := range seeded {
		m, ok := ms.Get(id)
		if !ok || !m.Processed {
			t.Fatalf("seed %d not marked processed", id)
		}
	}
}

// TestBatchCommitSurvivesCrash: a batch commit is atomic and durable —
// after a crash, recovery sees all of the batch's enqueues and processed
// flags.
func TestBatchCommitSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	ms, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.CreateQueue("q", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	seed := ms.Begin()
	var ids []MsgID
	for i := 0; i < 8; i++ {
		id, _ := seed.Enqueue("q", xmldom.MustParse(`<in/>`), nil, time.Now())
		ids = append(ids, id)
	}
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := ms.Begin()
	for i := 0; i < 5; i++ {
		if _, err := tx.Enqueue("q", xmldom.MustParse(fmt.Sprintf(`<out n="%d"/>`, i)), nil, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.MarkProcessedAll(ids); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ms.Crash()

	ms2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	msgs, err := ms2.Messages("q")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 13 {
		t.Fatalf("recovered %d messages, want 13", len(msgs))
	}
	processed := 0
	for _, m := range msgs {
		if m.Processed {
			processed++
		}
	}
	if processed != 8 {
		t.Fatalf("recovered %d processed flags, want 8", processed)
	}
}
