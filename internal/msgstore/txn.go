package msgstore

import (
	"fmt"
	"time"

	"demaq/internal/store"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// Txn is a message-store transaction. Mutations are buffered and applied
// atomically at Commit: the persistent part through one page-store
// transaction, the in-memory indexes under the store lock afterwards. This
// mirrors the paper's execution model, where rule evaluation produces a
// pending action list that is applied as a unit (Sec. 3.1).
type Txn struct {
	ms   *Store
	done bool

	enqueues  []*pendingEnqueue
	processed []MsgID
	resets    []ResetEvent

	// AppliedResets holds the reset events with their watermarks as
	// committed; the engine feeds them to the slicing manager.
	AppliedResets []ResetEvent
}

type pendingEnqueue struct {
	queue string
	doc   *xmldom.Node
	props map[string]xdm.Value
	at    time.Time
	id    MsgID
}

// Begin starts a transaction.
func (ms *Store) Begin() *Txn { return &Txn{ms: ms} }

// Enqueue stages a message for insertion and returns its pre-assigned ID.
// The document must be a sealed document node.
func (t *Txn) Enqueue(queue string, doc *xmldom.Node, props map[string]xdm.Value, at time.Time) (MsgID, error) {
	if t.done {
		return 0, fmt.Errorf("msgstore: transaction finished")
	}
	t.ms.mu.Lock()
	_, ok := t.ms.queues[queue]
	if !ok {
		t.ms.mu.Unlock()
		return 0, fmt.Errorf("msgstore: unknown queue %q", queue)
	}
	id := t.ms.nextID
	t.ms.nextID++
	t.ms.mu.Unlock()
	if doc.Kind != xmldom.DocumentNode {
		doc = doc.CloneAsDocument()
	}
	t.enqueues = append(t.enqueues, &pendingEnqueue{queue: queue, doc: doc, props: props, at: at.UTC(), id: id})
	return id, nil
}

// MarkProcessed stages setting the processed flag of a message.
func (t *Txn) MarkProcessed(id MsgID) error {
	if t.done {
		return fmt.Errorf("msgstore: transaction finished")
	}
	t.processed = append(t.processed, id)
	return nil
}

// Commit applies the staged mutations atomically and durably.
func (t *Txn) Commit() ([]Message, error) {
	if t.done {
		return nil, fmt.Errorf("msgstore: transaction finished")
	}
	t.done = true
	ms := t.ms
	ms.mu.Lock()
	defer ms.mu.Unlock()

	// Persistent phase first: if it fails, nothing is applied.
	var pt *store.Txn
	needDisk := false
	type diskEnq struct {
		pe  *pendingEnqueue
		q   *Queue
		rid store.RID
	}
	var diskEnqs []diskEnq
	for _, pe := range t.enqueues {
		if q := ms.queues[pe.queue]; q != nil && q.Mode == Persistent {
			needDisk = true
		}
	}
	for _, id := range t.processed {
		if m := ms.byID[id]; m != nil && ms.owner[id] != nil && ms.owner[id].Mode == Persistent {
			needDisk = true
		}
	}
	if len(t.resets) > 0 {
		needDisk = true
	}
	if needDisk {
		pt = ms.ps.Begin()
	}
	for _, pe := range t.enqueues {
		q := ms.queues[pe.queue]
		if q == nil {
			if pt != nil {
				pt.Abort()
			}
			return nil, fmt.Errorf("msgstore: unknown queue %q", pe.queue)
		}
		if q.Mode != Persistent {
			continue
		}
		m := &msgMeta{id: pe.id, props: pe.props, enqueued: pe.at}
		rec := encodeMessage(m, []byte(xmldom.Serialize(pe.doc)))
		rid, err := pt.Insert(q.heap, rec)
		if err != nil {
			pt.Abort()
			return nil, err
		}
		diskEnqs = append(diskEnqs, diskEnq{pe: pe, q: q, rid: rid})
	}
	for _, id := range t.processed {
		m := ms.byID[id]
		q := ms.owner[id]
		if m == nil || q == nil || m.dead {
			continue
		}
		if q.Mode == Persistent {
			// Status byte is payload offset 0.
			cur := byte(0)
			if m.processed {
				cur = 1
			}
			if err := pt.SetByte(m.rid, 0, cur|1); err != nil {
				pt.Abort()
				return nil, err
			}
		}
	}
	// Persist slice resets with the current ID high-water mark (every
	// message that exists now is dismissed from the slice).
	for _, re := range t.resets {
		re.Watermark = ms.nextID - 1
		if err := ms.writeReset(pt, re); err != nil {
			pt.Abort()
			return nil, err
		}
		t.AppliedResets = append(t.AppliedResets, re)
	}
	if pt != nil {
		if err := pt.Commit(); err != nil {
			return nil, err
		}
	}

	// In-memory phase: cannot fail.
	var out []Message
	for _, pe := range t.enqueues {
		q := ms.queues[pe.queue]
		m := &msgMeta{id: pe.id, props: pe.props, enqueued: pe.at}
		if q.Mode == Persistent {
			for _, de := range diskEnqs {
				if de.pe == pe {
					m.rid = de.rid
					break
				}
			}
			ms.cache.put(pe.id, pe.doc)
		} else {
			m.doc = pe.doc
		}
		q.msgs = append(q.msgs, m)
		q.live++
		ms.byID[m.id] = m
		ms.owner[m.id] = q
		out = append(out, Message{ID: m.id, Queue: q.Name, Props: m.props, Enqueued: m.enqueued})
	}
	for _, id := range t.processed {
		if m := ms.byID[id]; m != nil {
			m.processed = true
		}
	}
	return out, nil
}

// Abort discards the staged mutations. Pre-assigned message IDs are simply
// skipped (IDs are ordering tokens, not dense).
func (t *Txn) Abort() {
	t.done = true
	t.enqueues = nil
	t.processed = nil
}

// --- read side ---

// Doc returns the parsed document of a message.
func (ms *Store) Doc(id MsgID) (*xmldom.Node, error) {
	ms.mu.RLock()
	m := ms.byID[id]
	q := ms.owner[id]
	ms.mu.RUnlock()
	if m == nil || m.dead {
		return nil, fmt.Errorf("msgstore: message %d not found", id)
	}
	if m.doc != nil {
		return m.doc, nil
	}
	if doc, ok := ms.cache.get(id); ok {
		return doc, nil
	}
	data, err := ms.ps.Read(m.rid)
	if err != nil {
		return nil, err
	}
	payload := data[payloadOffset(data):]
	doc, err := xmldom.Parse(payload)
	if err != nil {
		return nil, fmt.Errorf("msgstore: message %d payload: %w", id, err)
	}
	_ = q
	ms.cache.put(id, doc)
	return doc, nil
}

// Get returns the message descriptor.
func (ms *Store) Get(id MsgID) (Message, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	m := ms.byID[id]
	q := ms.owner[id]
	if m == nil || m.dead || q == nil {
		return Message{}, false
	}
	return Message{ID: m.id, Queue: q.Name, Props: m.props, Enqueued: m.enqueued, Processed: m.processed}, true
}

// Property returns one property value of a message.
func (ms *Store) Property(id MsgID, name string) (xdm.Value, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	m := ms.byID[id]
	if m == nil || m.dead {
		return xdm.Value{}, false
	}
	v, ok := m.props[name]
	return v, ok
}

// Messages returns the live messages of a queue in enqueue order.
func (ms *Store) Messages(queue string) ([]Message, error) {
	ms.mu.RLock()
	q, ok := ms.queues[queue]
	if !ok {
		ms.mu.RUnlock()
		return nil, fmt.Errorf("msgstore: unknown queue %q", queue)
	}
	out := make([]Message, 0, q.live)
	for _, m := range q.msgs {
		if m.dead {
			continue
		}
		out = append(out, Message{ID: m.id, Queue: q.Name, Props: m.props, Enqueued: m.enqueued, Processed: m.processed})
	}
	ms.mu.RUnlock()
	return out, nil
}

// QueueDocs returns the documents of all live messages in a queue, the
// implementation behind qs:queue() (Sec. 3.4).
func (ms *Store) QueueDocs(queue string) ([]*xmldom.Node, error) {
	msgs, err := ms.Messages(queue)
	if err != nil {
		return nil, err
	}
	docs := make([]*xmldom.Node, 0, len(msgs))
	for _, m := range msgs {
		d, err := ms.Doc(m.ID)
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	return docs, nil
}

// Remove physically deletes processed messages from a queue using the
// retention-based redo-only batch delete (Sec. 4.1). It is called by the
// garbage collector for messages no longer held by any live slice.
func (ms *Store) Remove(queue string, ids []MsgID) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	q, ok := ms.queues[queue]
	if !ok {
		return fmt.Errorf("msgstore: unknown queue %q", queue)
	}
	var rids []store.RID
	for _, id := range ids {
		m := ms.byID[id]
		if m == nil || m.dead {
			continue
		}
		if q.Mode == Persistent {
			rids = append(rids, m.rid)
		}
		m.dead = true
		q.live--
		delete(ms.byID, id)
		delete(ms.owner, id)
		ms.cache.drop(id)
	}
	if len(rids) > 0 {
		if err := ms.ps.BatchDelete(q.heap, rids); err != nil {
			return err
		}
	}
	// Compact the in-memory slice when dead entries dominate.
	if len(q.msgs) > 64 && q.live*2 < len(q.msgs) {
		livemsgs := make([]*msgMeta, 0, q.live)
		for _, m := range q.msgs {
			if !m.dead {
				livemsgs = append(livemsgs, m)
			}
		}
		q.msgs = livemsgs
	}
	return nil
}

// UnprocessedIDs returns the IDs of unprocessed messages per queue, used by
// the engine to rebuild scheduler state after a restart.
func (ms *Store) UnprocessedIDs(queue string) []MsgID {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	q, ok := ms.queues[queue]
	if !ok {
		return nil
	}
	var out []MsgID
	for _, m := range q.msgs {
		if !m.dead && !m.processed {
			out = append(out, m.id)
		}
	}
	return out
}

// ProcessedIDs returns the IDs of processed (retention-eligible) messages.
func (ms *Store) ProcessedIDs(queue string) []MsgID {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	q, ok := ms.queues[queue]
	if !ok {
		return nil
	}
	var out []MsgID
	for _, m := range q.msgs {
		if !m.dead && m.processed {
			out = append(out, m.id)
		}
	}
	return out
}

// --- collections (master data, fn:collection) ---

// CreateCollection declares a master-data collection.
func (ms *Store) CreateCollection(name string) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, ok := ms.colls[name]; ok {
		return nil
	}
	h, err := ms.ps.CreateHeap("c:" + name)
	if err != nil {
		return err
	}
	ms.colls[name] = &collection{name: name, heap: h}
	return nil
}

// AddToCollection durably appends a document to a collection.
func (ms *Store) AddToCollection(name string, doc *xmldom.Node) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	c, ok := ms.colls[name]
	if !ok {
		ms.mu.Unlock()
		if err := ms.CreateCollection(name); err != nil {
			return err
		}
		ms.mu.Lock()
		c = ms.colls[name]
	}
	if doc.Kind != xmldom.DocumentNode {
		doc = doc.CloneAsDocument()
	}
	pt := ms.ps.Begin()
	if _, err := pt.Insert(c.heap, []byte(xmldom.Serialize(doc))); err != nil {
		pt.Abort()
		return err
	}
	if err := pt.Commit(); err != nil {
		return err
	}
	c.docs = append(c.docs, doc)
	return nil
}

// Collection returns the documents of a collection (empty if undeclared,
// matching fn:collection's behavior for unknown sources in Demaq).
func (ms *Store) Collection(name string) []*xmldom.Node {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	if c, ok := ms.colls[name]; ok {
		return c.docs
	}
	return nil
}
