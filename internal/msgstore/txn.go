package msgstore

import (
	"fmt"
	"sort"
	"time"

	"demaq/internal/store"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// Txn is a message-store transaction. Mutations are buffered and applied
// atomically at Commit, which runs a three-phase pipeline:
//
//  1. prepare — resolve target queues and messages (short read locks only)
//     and decide whether a page-store transaction is needed;
//  2. persist — run the page-store transaction with NO msgstore lock held,
//     so concurrent committers overlap inside the WAL and their commit
//     fsyncs coalesce (group commit);
//  3. publish — apply the in-memory indexes under the per-shard and
//     per-queue locks; queue message lists stay in ID order even when
//     commits complete out of ID order.
//
// This mirrors the paper's execution model, where rule evaluation produces
// a pending action list that is applied as a unit (Sec. 3.1), while the
// fine-grained locking of Sec. 4.3 keeps independent transactions from
// serializing on the store. Isolation between concurrent transactions is
// the job of the logical lock manager above (internal/txn).
//
// A transaction stages any number of enqueues (Enqueue) and processed
// flags (MarkProcessed / MarkProcessedAll): the engine's set-oriented
// batch executor commits a whole batch of messages through one Txn, which
// then costs one page-store transaction (one WAL commit cohort) and one
// publish round that takes each ID shard and each queue lock once.
type Txn struct {
	ms   *Store
	done bool

	enqueues  []*pendingEnqueue
	processed []MsgID
	resets    []ResetEvent
	sessions  []SessionState

	// AppliedResets holds the reset events with their watermarks as
	// committed; the engine feeds them to the slicing manager.
	AppliedResets []ResetEvent
}

type pendingEnqueue struct {
	queue string
	doc   *xmldom.Node
	props map[string]xdm.Value
	at    time.Time
	id    MsgID

	// Streaming ingest (EnqueueEncoded): the payload already rendered in
	// the binary encoding; doc is then the decoded tree for the doc cache
	// (partial when fp != 0).
	enc    []byte
	fp     uint64
	pruned []string

	// Filled during Commit.
	q         *Queue    // prepare
	rid       store.RID // persist (persistent queues)
	statusRID store.RID // persist: status side-heap record
	binary    bool      // persist: payload format written
}

// Begin starts a transaction.
func (ms *Store) Begin() *Txn { return &Txn{ms: ms} }

// Enqueue stages a message for insertion and returns its pre-assigned ID.
// The document must be a sealed document node.
func (t *Txn) Enqueue(queue string, doc *xmldom.Node, props map[string]xdm.Value, at time.Time) (MsgID, error) {
	if t.done {
		return 0, fmt.Errorf("msgstore: transaction finished")
	}
	if t.ms.getQueue(queue) == nil {
		return 0, fmt.Errorf("msgstore: unknown queue %q", queue)
	}
	id := MsgID(t.ms.nextID.Add(1) - 1)
	if doc.Kind != xmldom.DocumentNode {
		doc = doc.CloneAsDocument()
	}
	t.enqueues = append(t.enqueues, &pendingEnqueue{queue: queue, doc: doc, props: props, at: at.UTC(), id: id})
	return id, nil
}

// EnqueueEncoded stages a message whose payload was already rendered into
// the binary document encoding by the streaming ingest path — the record is
// written from enc directly, with no tree serialization. doc is the decoded
// view of enc used to seed the doc cache: the complete tree when fp is 0,
// or the partial (projected) tree decoded under the projection fingerprint
// fp, with pruned naming the element local names inside its spans. enc and
// doc are retained past Commit (the cache aliases enc via the decoded
// strings); the caller must not reuse the buffer.
//
// Projected payloads require a persistent queue (a transient message is
// held only as its cached tree, which must be complete); stores configured
// for text payloads cannot accept pre-encoded records at all.
func (t *Txn) EnqueueEncoded(queue string, enc []byte, doc *xmldom.Node, fp uint64, pruned []string, props map[string]xdm.Value, at time.Time) (MsgID, error) {
	if t.done {
		return 0, fmt.Errorf("msgstore: transaction finished")
	}
	if t.ms.textPayloads {
		return 0, fmt.Errorf("msgstore: pre-encoded enqueue on a text-payload store")
	}
	q := t.ms.getQueue(queue)
	if q == nil {
		return 0, fmt.Errorf("msgstore: unknown queue %q", queue)
	}
	if fp != 0 && q.Mode != Persistent {
		return 0, fmt.Errorf("msgstore: projected payload for transient queue %q", queue)
	}
	id := MsgID(t.ms.nextID.Add(1) - 1)
	t.enqueues = append(t.enqueues, &pendingEnqueue{
		queue: queue, doc: doc, props: props, at: at.UTC(), id: id,
		enc: enc, fp: fp, pruned: pruned,
	})
	return id, nil
}

// MarkProcessed stages setting the processed flag of a message.
func (t *Txn) MarkProcessed(id MsgID) error {
	if t.done {
		return fmt.Errorf("msgstore: transaction finished")
	}
	t.processed = append(t.processed, id)
	return nil
}

// MarkProcessedAll stages the processed flags of a whole batch of messages
// in one call; together with multi-message Enqueue staging it lets a batch
// commit flow through a single prepare/persist/publish cycle.
func (t *Txn) MarkProcessedAll(ids []MsgID) error {
	if t.done {
		return fmt.Errorf("msgstore: transaction finished")
	}
	t.processed = append(t.processed, ids...)
	return nil
}

// Commit applies the staged mutations atomically and durably.
func (t *Txn) Commit() ([]Message, error) {
	if t.done {
		return nil, fmt.Errorf("msgstore: transaction finished")
	}
	t.done = true
	ms := t.ms

	// --- prepare: resolve targets, no page-store work yet ---
	needDisk := len(t.resets) > 0 || len(t.sessions) > 0
	for _, pe := range t.enqueues {
		pe.q = ms.getQueue(pe.queue)
		if pe.q == nil {
			return nil, fmt.Errorf("msgstore: unknown queue %q", pe.queue)
		}
		if pe.q.Mode == Persistent {
			needDisk = true
		}
	}
	toProcess := make([]*msgMeta, 0, len(t.processed))
	for _, id := range t.processed {
		m := ms.lookup(id)
		if m == nil {
			continue // vanished (GC'd) or never existed; matches enqueue-order apply
		}
		toProcess = append(toProcess, m)
		if m.q.Mode == Persistent {
			needDisk = true
		}
	}

	// --- persist: one page-store transaction, no msgstore lock held ---
	if needDisk {
		pt := ms.ps.Begin()
		bufp := recBufPool.Get().(*[]byte)
		for _, pe := range t.enqueues {
			if pe.q.Mode != Persistent {
				continue
			}
			// The single-parse ingest contract: the sealed tree handed to
			// Enqueue is rendered straight into the record buffer (binary
			// encoding by default), with no intermediate string. Streaming
			// enqueues skip even that: the pre-encoded payload bytes are
			// spliced into the record as-is.
			m := &msgMeta{id: pe.id, props: pe.props, enqueued: pe.at}
			var rec []byte
			if pe.enc != nil {
				rec = ms.appendEncodedRecord((*bufp)[:0], m, pe.enc)
			} else {
				rec = ms.appendMessageRecord((*bufp)[:0], m, pe.doc)
			}
			*bufp = rec
			pe.binary = m.binary
			rid, err := pt.Insert(pe.q.heap, rec)
			if err != nil {
				pt.Abort()
				recBufPool.Put(bufp)
				return nil, err
			}
			pe.rid = rid
			// The status side-heap record rides in the same page-store
			// transaction, so a message and its status slot are atomic:
			// recovery sees both or neither.
			var srec [statusRecSize]byte
			srid, err := pt.Insert(pe.q.statusHeap, appendStatusRecord(srec[:0], pe.id, m.status(false)))
			if err != nil {
				pt.Abort()
				recBufPool.Put(bufp)
				return nil, err
			}
			pe.statusRID = srid
		}
		recBufPool.Put(bufp)
		for _, m := range toProcess {
			// Skip messages the GC removed since prepare. (In practice GC
			// only touches already-processed messages, which no worker
			// marks again, but the re-check keeps the pipeline safe on its
			// own terms.)
			if m.q.Mode != Persistent || m.dead.Load() {
				continue
			}
			// SetByte rewrites the whole status byte, so the payload-format
			// bit is re-synthesized alongside the processed flag. Both
			// concurrent markers compute the same value, so the write stays
			// idempotent. Messages written before the status side-heap
			// existed have no side record; they keep the in-place update of
			// the payload record's first byte.
			var err error
			if m.statusRID != (store.RID{}) {
				err = pt.SetByte(m.statusRID, 8, m.status(true))
			} else {
				err = pt.SetByte(m.rid, 0, m.status(true))
			}
			if err != nil {
				pt.Abort()
				return nil, err
			}
		}
		// Persist slice resets with the current ID high-water mark (every
		// message that exists now is dismissed from the slice).
		for _, re := range t.resets {
			re.Watermark = MsgID(ms.nextID.Load() - 1)
			if err := ms.writeReset(pt, re); err != nil {
				pt.Abort()
				return nil, err
			}
			t.AppliedResets = append(t.AppliedResets, re)
		}
		// Session snapshots ride the same page-store transaction as the
		// enqueue they guard: the retransmit-suppression state and the
		// message become durable together, or neither does.
		sessVers := make([]uint64, len(t.sessions))
		sessRids := make([]store.RID, len(t.sessions))
		for i, s := range t.sessions {
			sessVers[i] = ms.sessVer.Add(1)
			rid, err := ms.writeSession(pt, sessVers[i], s)
			if err != nil {
				pt.Abort()
				return nil, err
			}
			sessRids[i] = rid
		}
		if err := pt.Commit(); err != nil {
			return nil, err
		}
		for i, s := range t.sessions {
			ms.publishSession(s, sessVers[i], sessRids[i])
		}
	}

	// --- publish: in-memory indexes under short striped locks; a batch
	// takes each shard and queue lock once, not once per message ---
	var out []Message
	if n := len(t.enqueues); n > 0 {
		metas := make([]*msgMeta, n)
		for i, pe := range t.enqueues {
			q := pe.q
			m := &msgMeta{id: pe.id, props: pe.props, enqueued: pe.at, q: q, binary: pe.binary}
			if q.Mode == Persistent {
				m.rid = pe.rid
				m.statusRID = pe.statusRID
				if pe.fp != 0 {
					ms.cache.putProjected(pe.id, pe.doc, pe.fp, pe.pruned)
				} else {
					ms.cache.put(pe.id, pe.doc)
				}
			} else {
				m.doc = pe.doc
			}
			metas[i] = m
		}
		ms.publishByID(metas)
		ms.publishToQueues(metas)
		// Index the batch after the queue publish, with no shard or queue
		// lock held: probe reads nest btree latch → shard lock, never the
		// reverse. A probe racing this window sees the message via the queue
		// list before its postings land, which only makes the index miss it —
		// the scan-side fallbacks (propMatch, queue scan) stay authoritative
		// for admission, so a late posting is never a correctness hole.
		for _, m := range metas {
			ms.indexMessage(m)
		}
		out = make([]Message, n)
		for i, m := range metas {
			out[i] = Message{ID: m.id, Queue: m.q.Name, Props: m.props, Enqueued: m.enqueued}
		}
	}
	for _, m := range toProcess {
		m.processed.Store(true)
	}
	return out, nil
}

// publishByID inserts a commit's messages into the sharded point index.
// This runs before the queue lists are touched: scans discover messages
// through the queue list, so a message must be resolvable by ID before it
// appears there.
func (ms *Store) publishByID(metas []*msgMeta) {
	if len(metas) == 1 {
		m := metas[0]
		sh := ms.shard(m.id)
		sh.mu.Lock()
		sh.byID[m.id] = m
		sh.mu.Unlock()
		return
	}
	var byShard [idShardCount][]*msgMeta
	for _, m := range metas {
		idx := uint64(m.id) % idShardCount
		byShard[idx] = append(byShard[idx], m)
	}
	for i := range byShard {
		if len(byShard[i]) == 0 {
			continue
		}
		sh := &ms.shards[i]
		sh.mu.Lock()
		for _, m := range byShard[i] {
			sh.byID[m.id] = m
		}
		sh.mu.Unlock()
	}
}

// publishToQueues inserts a commit's messages into their queues' ordered
// lists, grouped so each distinct queue lock is taken once. metas are in
// staging order — ascending pre-assigned IDs — so per-queue sub-batches
// stay sorted and usually hit insertSorted's append fast path.
func (ms *Store) publishToQueues(metas []*msgMeta) {
	if len(metas) == 1 {
		m := metas[0]
		m.q.mu.Lock()
		m.q.insertSorted(m)
		m.q.live++
		m.q.mu.Unlock()
		return
	}
	type qGroup struct {
		q  *Queue
		ms []*msgMeta
	}
	var groups []qGroup
	for _, m := range metas {
		found := false
		for gi := range groups {
			if groups[gi].q == m.q {
				groups[gi].ms = append(groups[gi].ms, m)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, qGroup{q: m.q, ms: []*msgMeta{m}})
		}
	}
	for _, g := range groups {
		g.q.mu.Lock()
		for _, m := range g.ms {
			g.q.insertSorted(m)
		}
		g.q.live += len(g.ms)
		g.q.mu.Unlock()
	}
}

// insertSorted inserts m into the queue's message list keeping ID order.
// Commits usually complete in roughly ID order, so the append fast path
// dominates. Caller holds q.mu.
func (q *Queue) insertSorted(m *msgMeta) {
	n := len(q.msgs)
	if n == 0 || q.msgs[n-1].id < m.id {
		q.msgs = append(q.msgs, m)
		return
	}
	i := sort.Search(n, func(i int) bool { return q.msgs[i].id > m.id })
	q.msgs = append(q.msgs, nil)
	copy(q.msgs[i+1:], q.msgs[i:])
	q.msgs[i] = m
}

// Abort discards the staged mutations. Pre-assigned message IDs are simply
// skipped (IDs are ordering tokens, not dense).
func (t *Txn) Abort() {
	t.done = true
	t.enqueues = nil
	t.processed = nil
	t.resets = nil
	t.sessions = nil
}

// --- read side ---

// Doc returns the parsed document of a message.
func (ms *Store) Doc(id MsgID) (*xmldom.Node, error) {
	m := ms.lookup(id)
	if m == nil {
		return nil, fmt.Errorf("msgstore: message %d not found", id)
	}
	if m.doc != nil {
		return m.doc, nil
	}
	if doc, ok := ms.cache.get(id); ok {
		return doc, nil
	}
	data, err := ms.ps.Read(m.rid)
	if err != nil {
		return nil, err
	}
	// Rehydration dispatches on the record's format bit: binary payloads
	// decode structurally (one arena, no character-level parse), text
	// payloads take the parse baseline. The record buffer from Read is
	// freshly allocated and never touched again, so the decoded tree may
	// alias it (DecodeOwned) instead of copying the payload once more.
	po := payloadOffset(data)
	if po < 0 {
		return nil, fmt.Errorf("msgstore: message %d record corrupt", id)
	}
	payload := data[po:]
	var doc *xmldom.Node
	if data[0]&statusBinaryPayload != 0 {
		doc, err = xmldom.DecodeOwned(payload)
	} else {
		doc, err = xmldom.Parse(payload)
	}
	if err != nil {
		return nil, fmt.Errorf("msgstore: message %d payload: %w", id, err)
	}
	ms.cache.put(id, doc)
	return doc, nil
}

// DocProjected returns a document usable for evaluation under the queue's
// current projection, identified by its fingerprint fp. If the stored
// record was encoded under the same projection, the cheaper partial tree is
// returned (spans skipped) together with the local names of the elements
// pruned into spans — the caller merges those into its element-name
// dispatch index. In every other case (full record, fingerprint mismatch
// after a rule change, text payload, fp == 0 meaning "no projection") the
// complete document is materialized exactly like Doc.
func (ms *Store) DocProjected(id MsgID, fp uint64) (*xmldom.Node, []string, error) {
	if fp == 0 {
		doc, err := ms.Doc(id)
		return doc, nil, err
	}
	m := ms.lookup(id)
	if m == nil {
		return nil, nil, fmt.Errorf("msgstore: message %d not found", id)
	}
	if m.doc != nil {
		return m.doc, nil, nil // transient: always a complete tree
	}
	if doc, pruned, ok := ms.cache.getProjected(id, fp); ok {
		return doc, pruned, nil
	}
	data, err := ms.ps.Read(m.rid)
	if err != nil {
		return nil, nil, err
	}
	po := payloadOffset(data)
	if po < 0 {
		return nil, nil, fmt.Errorf("msgstore: message %d record corrupt", id)
	}
	payload := data[po:]
	if rfp, ok := xmldom.ProjectedFingerprint(payload); ok && rfp == fp {
		doc, _, pruned, err := xmldom.DecodeProjectedOwned(payload)
		if err != nil {
			return nil, nil, fmt.Errorf("msgstore: message %d payload: %w", id, err)
		}
		ms.cache.putProjected(id, doc, fp, pruned)
		return doc, pruned, nil
	}
	// Stored under a different (or no) projection: materialize fully. The
	// decode expands any spans transparently.
	var doc *xmldom.Node
	if data[0]&statusBinaryPayload != 0 {
		doc, err = xmldom.DecodeOwned(payload)
	} else {
		doc, err = xmldom.Parse(payload)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("msgstore: message %d payload: %w", id, err)
	}
	ms.cache.put(id, doc)
	return doc, nil, nil
}

// Get returns the message descriptor.
func (ms *Store) Get(id MsgID) (Message, bool) {
	m := ms.lookup(id)
	if m == nil {
		return Message{}, false
	}
	return Message{ID: m.id, Queue: m.q.Name, Props: m.props, Enqueued: m.enqueued, Processed: m.processed.Load()}, true
}

// Property returns one property value of a message.
func (ms *Store) Property(id MsgID, name string) (xdm.Value, bool) {
	m := ms.lookup(id)
	if m == nil {
		return xdm.Value{}, false
	}
	v, ok := m.props[name]
	return v, ok
}

// Messages returns the live messages of a queue in enqueue order.
func (ms *Store) Messages(queue string) ([]Message, error) {
	q := ms.getQueue(queue)
	if q == nil {
		return nil, fmt.Errorf("msgstore: unknown queue %q", queue)
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	out := make([]Message, 0, q.live)
	for _, m := range q.msgs {
		if m.dead.Load() {
			continue
		}
		out = append(out, Message{ID: m.id, Queue: q.Name, Props: m.props, Enqueued: m.enqueued, Processed: m.processed.Load()})
	}
	return out, nil
}

// QueueDocs returns the documents of all live messages in a queue, the
// implementation behind qs:queue() (Sec. 3.4).
func (ms *Store) QueueDocs(queue string) ([]*xmldom.Node, error) {
	msgs, err := ms.Messages(queue)
	if err != nil {
		return nil, err
	}
	docs := make([]*xmldom.Node, 0, len(msgs))
	for _, m := range msgs {
		d, err := ms.Doc(m.ID)
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	return docs, nil
}

// Remove physically deletes processed messages from a queue using the
// retention-based redo-only batch delete (Sec. 4.1). It is called by the
// garbage collector for messages no longer held by any live slice.
func (ms *Store) Remove(queue string, ids []MsgID) error {
	q := ms.getQueue(queue)
	if q == nil {
		return fmt.Errorf("msgstore: unknown queue %q", queue)
	}
	var rids, statusRids []store.RID
	var dropped []*msgMeta
	removed := 0
	for _, id := range ids {
		sh := ms.shard(id)
		sh.mu.Lock()
		m := sh.byID[id]
		if m == nil || m.q != q {
			sh.mu.Unlock()
			continue
		}
		delete(sh.byID, id)
		sh.mu.Unlock()
		if !m.dead.CompareAndSwap(false, true) {
			continue
		}
		removed++
		dropped = append(dropped, m)
		if q.Mode == Persistent {
			rids = append(rids, m.rid)
			if m.statusRID != (store.RID{}) {
				statusRids = append(statusRids, m.statusRID)
			}
		}
		ms.cache.drop(id)
	}
	// Postings come out after the shard locks are released (same nesting
	// discipline as indexing at commit). A probe between the CAS and this
	// point sees the stale posting but filters it through lookup, which
	// already misses: the id left the shard map above.
	for _, m := range dropped {
		ms.unindexMessage(m)
	}
	q.mu.Lock()
	q.live -= removed
	// Compact the in-memory slice when dead entries dominate.
	if len(q.msgs) > 64 && q.live*2 < len(q.msgs) {
		livemsgs := make([]*msgMeta, 0, q.live)
		for _, m := range q.msgs {
			if !m.dead.Load() {
				livemsgs = append(livemsgs, m)
			}
		}
		q.msgs = livemsgs
	}
	q.mu.Unlock()
	// Disk deletion runs outside all msgstore locks; recovery re-runs of a
	// lost batch delete are idempotent (processed messages re-collect).
	// The status side-heap records go second: a crash between the two
	// deletes leaves orphaned status entries, which loadQueue's join simply
	// never matches against a payload record.
	if len(rids) > 0 {
		if err := ms.ps.BatchDelete(q.heap, rids); err != nil {
			return err
		}
		if len(statusRids) > 0 {
			return ms.ps.BatchDelete(q.statusHeap, statusRids)
		}
	}
	return nil
}

// UnprocessedIDs returns the IDs of unprocessed messages per queue, used by
// the engine to rebuild scheduler state after a restart.
func (ms *Store) UnprocessedIDs(queue string) []MsgID {
	q := ms.getQueue(queue)
	if q == nil {
		return nil
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	var out []MsgID
	for _, m := range q.msgs {
		if !m.dead.Load() && !m.processed.Load() {
			out = append(out, m.id)
		}
	}
	return out
}

// ProcessedIDs returns the IDs of processed (retention-eligible) messages.
func (ms *Store) ProcessedIDs(queue string) []MsgID {
	q := ms.getQueue(queue)
	if q == nil {
		return nil
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	var out []MsgID
	for _, m := range q.msgs {
		if !m.dead.Load() && m.processed.Load() {
			out = append(out, m.id)
		}
	}
	return out
}

// --- collections (master data, fn:collection) ---

// CreateCollection declares a master-data collection.
func (ms *Store) CreateCollection(name string) error {
	_, err := ms.getOrCreateCollection(name)
	return err
}

func (ms *Store) getOrCreateCollection(name string) (*collection, error) {
	ms.cmu.RLock()
	c := ms.colls[name]
	ms.cmu.RUnlock()
	if c != nil {
		return c, nil
	}
	ms.cmu.Lock()
	defer ms.cmu.Unlock()
	if c := ms.colls[name]; c != nil {
		return c, nil
	}
	h, err := ms.ps.CreateHeap("c:" + name)
	if err != nil {
		return nil, err
	}
	c = &collection{name: name, heap: h}
	ms.colls[name] = c
	return c, nil
}

// AddToCollection durably appends a document to a collection. Different
// collections append concurrently; the page-store commit participates in
// group commit like any other transaction.
func (ms *Store) AddToCollection(name string, doc *xmldom.Node) error {
	c, err := ms.getOrCreateCollection(name)
	if err != nil {
		return err
	}
	if doc.Kind != xmldom.DocumentNode {
		doc = doc.CloneAsDocument()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pt := ms.ps.Begin()
	bufp := recBufPool.Get().(*[]byte)
	var rec []byte
	if ms.textPayloads {
		rec = xmldom.AppendSerialize((*bufp)[:0], doc)
		ms.payloadTextBytes.Add(uint64(len(rec)))
	} else {
		rec = xmldom.EncodeAppend((*bufp)[:0], doc)
		ms.payloadEncBytes.Add(uint64(len(rec)))
	}
	*bufp = rec
	_, err = pt.Insert(c.heap, rec)
	recBufPool.Put(bufp)
	if err != nil {
		pt.Abort()
		return err
	}
	if err := pt.Commit(); err != nil {
		return err
	}
	c.docs = append(c.docs, doc)
	return nil
}

// Collection returns the documents of a collection (empty if undeclared,
// matching fn:collection's behavior for unknown sources in Demaq).
func (ms *Store) Collection(name string) []*xmldom.Node {
	ms.cmu.RLock()
	c := ms.colls[name]
	ms.cmu.RUnlock()
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs
}
