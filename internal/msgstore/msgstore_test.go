package msgstore

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	ms, err := Open(t.TempDir(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	return ms
}

func enqueue(t *testing.T, ms *Store, queue, xml string, props map[string]xdm.Value) MsgID {
	t.Helper()
	tx := ms.Begin()
	id, err := tx.Enqueue(queue, xmldom.MustParse(xml), props, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestEnqueueAndRead(t *testing.T) {
	ms := openTemp(t)
	if _, err := ms.CreateQueue("crm", Persistent, 0); err != nil {
		t.Fatal(err)
	}
	id := enqueue(t, ms, "crm", `<offerRequest><requestID>r1</requestID></offerRequest>`,
		map[string]xdm.Value{"Sender": xdm.NewString("urn:test")})
	doc, err := ms.Doc(id)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root().Name.Local != "offerRequest" {
		t.Fatal("payload")
	}
	m, ok := ms.Get(id)
	if !ok || m.Queue != "crm" || m.Processed {
		t.Fatalf("meta: %+v", m)
	}
	if v, ok := ms.Property(id, "Sender"); !ok || v.S != "urn:test" {
		t.Fatalf("property: %v", v)
	}
}

func TestTransientQueue(t *testing.T) {
	ms := openTemp(t)
	ms.CreateQueue("tmp", Transient, 0)
	id := enqueue(t, ms, "tmp", `<x>1</x>`, nil)
	doc, err := ms.Doc(id)
	if err != nil || doc.StringValue() != "1" {
		t.Fatal("transient doc")
	}
	docs, _ := ms.QueueDocs("tmp")
	if len(docs) != 1 {
		t.Fatal("queue docs")
	}
}

func TestQueueOrderAndProcessed(t *testing.T) {
	ms := openTemp(t)
	ms.CreateQueue("q", Persistent, 0)
	var ids []MsgID
	for i := 0; i < 10; i++ {
		ids = append(ids, enqueue(t, ms, "q", fmt.Sprintf(`<m>%d</m>`, i), nil))
	}
	msgs, _ := ms.Messages("q")
	for i, m := range msgs {
		if m.ID != ids[i] {
			t.Fatal("enqueue order")
		}
	}
	tx := ms.Begin()
	tx.MarkProcessed(ids[0])
	tx.MarkProcessed(ids[1])
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := ms.UnprocessedIDs("q"); len(got) != 8 {
		t.Fatalf("unprocessed: %d", len(got))
	}
	if got := ms.ProcessedIDs("q"); len(got) != 2 {
		t.Fatalf("processed: %d", len(got))
	}
}

func TestAbortDiscards(t *testing.T) {
	ms := openTemp(t)
	ms.CreateQueue("q", Persistent, 0)
	tx := ms.Begin()
	tx.Enqueue("q", xmldom.MustParse(`<a/>`), nil, time.Now())
	tx.Abort()
	msgs, _ := ms.Messages("q")
	if len(msgs) != 0 {
		t.Fatal("aborted enqueue visible")
	}
}

func TestAtomicMultiEnqueue(t *testing.T) {
	ms := openTemp(t)
	ms.CreateQueue("a", Persistent, 0)
	ms.CreateQueue("b", Transient, 0)
	tx := ms.Begin()
	tx.Enqueue("a", xmldom.MustParse(`<m1/>`), nil, time.Now())
	tx.Enqueue("b", xmldom.MustParse(`<m2/>`), nil, time.Now())
	out, err := tx.Commit()
	if err != nil || len(out) != 2 {
		t.Fatalf("commit: %v %v", out, err)
	}
	am, _ := ms.Messages("a")
	bm, _ := ms.Messages("b")
	if len(am) != 1 || len(bm) != 1 {
		t.Fatal("both queues should have the message")
	}
	// IDs reflect global order.
	if !(am[0].ID < bm[0].ID) {
		t.Fatal("ID order")
	}
}

func TestRestartRecoversMessagesAndFlags(t *testing.T) {
	dir := t.TempDir()
	ms, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ms.CreateQueue("q", Persistent, 3)
	var ids []MsgID
	for i := 0; i < 5; i++ {
		tx := ms.Begin()
		id, _ := tx.Enqueue("q", xmldom.MustParse(fmt.Sprintf(`<m n="%d">body</m>`, i)),
			map[string]xdm.Value{"n": xdm.NewInteger(int64(i))}, time.Now())
		tx.Commit()
		ids = append(ids, id)
	}
	tx := ms.Begin()
	tx.MarkProcessed(ids[2])
	tx.Commit()
	ms.Crash()

	ms2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	// Queue must be re-declared (QDL is re-run by the engine), but its
	// messages were recovered from the heap on open.
	if _, err := ms2.CreateQueue("q", Persistent, 3); err != nil {
		t.Fatal(err)
	}
	msgs, err := ms2.Messages("q")
	if err != nil || len(msgs) != 5 {
		t.Fatalf("recovered %d messages: %v", len(msgs), err)
	}
	if !msgs[2].Processed || msgs[3].Processed {
		t.Fatal("processed flags not recovered")
	}
	if v, ok := ms2.Property(ids[4], "n"); !ok || v.T != xdm.TypeInteger || v.I != 4 {
		t.Fatalf("typed property not recovered: %+v", v)
	}
	doc, err := ms2.Doc(ids[1])
	if err != nil || doc.Root().StringValue() != "body" {
		t.Fatal("payload not recovered")
	}
	// New IDs continue after the recovered maximum.
	tx2 := ms2.Begin()
	nid, _ := tx2.Enqueue("q", xmldom.MustParse(`<m/>`), nil, time.Now())
	tx2.Commit()
	if nid <= ids[4] {
		t.Fatalf("ID sequence regressed: %d <= %d", nid, ids[4])
	}
}

func TestRemoveAndRetentionScan(t *testing.T) {
	ms := openTemp(t)
	ms.CreateQueue("q", Persistent, 0)
	var ids []MsgID
	for i := 0; i < 20; i++ {
		ids = append(ids, enqueue(t, ms, "q", `<m>x</m>`, nil))
	}
	tx := ms.Begin()
	for _, id := range ids[:10] {
		tx.MarkProcessed(id)
	}
	tx.Commit()
	if err := ms.Remove("q", ids[:10]); err != nil {
		t.Fatal(err)
	}
	msgs, _ := ms.Messages("q")
	if len(msgs) != 10 {
		t.Fatalf("after remove: %d", len(msgs))
	}
	if _, err := ms.Doc(ids[0]); err == nil {
		t.Fatal("removed doc should not load")
	}
	// Removal is durable.
	docs, _ := ms.QueueDocs("q")
	if len(docs) != 10 {
		t.Fatal("queue docs after remove")
	}
}

func TestLargeMessagePayload(t *testing.T) {
	ms := openTemp(t)
	ms.CreateQueue("q", Persistent, 0)
	body := strings.Repeat("<item>payload data with some text</item>", 2000) // ~80 KB
	id := enqueue(t, ms, "q", "<big>"+body+"</big>", nil)
	doc, err := ms.Doc(id)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(doc.Root().ChildElements()); n != 2000 {
		t.Fatalf("big payload children: %d", n)
	}
}

func TestCollections(t *testing.T) {
	dir := t.TempDir()
	ms, _ := Open(dir, DefaultOptions())
	if err := ms.AddToCollection("crm", xmldom.MustParse(`<pricelist><p>1</p></pricelist>`)); err != nil {
		t.Fatal(err)
	}
	if docs := ms.Collection("crm"); len(docs) != 1 {
		t.Fatal("collection")
	}
	if docs := ms.Collection("none"); docs != nil {
		t.Fatal("unknown collection should be empty")
	}
	ms.Close()
	ms2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	if docs := ms2.Collection("crm"); len(docs) != 1 {
		t.Fatal("collection not durable")
	}
}

func TestDocCacheEviction(t *testing.T) {
	opts := DefaultOptions()
	opts.CacheDocs = 4
	ms, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	ms.CreateQueue("q", Persistent, 0)
	var ids []MsgID
	for i := 0; i < 20; i++ {
		ids = append(ids, enqueue(t, ms, "q", fmt.Sprintf(`<m>%d</m>`, i), nil))
	}
	for i, id := range ids {
		doc, err := ms.Doc(id)
		if err != nil || doc.StringValue() != fmt.Sprintf("%d", i) {
			t.Fatalf("doc %d through small cache: %v", i, err)
		}
	}
}
