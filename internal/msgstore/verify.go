package msgstore

import (
	"encoding/binary"
	"fmt"

	"demaq/internal/store"
)

// VerifyIntegrity cross-checks the message store's durable state against
// the in-memory structures rebuilt from it. It is the recovery invariant
// checker of the crash torture harness, run after every simulated crash
// and reopen:
//
//   - every payload record decodes, and no message id appears twice;
//   - the status side-heap joins cleanly: every live message's processed
//     flag agrees with its authoritative status record, and orphan status
//     records (payload deleted, status delete lost in the crash — the one
//     state the Remove WAL ordering permits) reference no live payload;
//   - the property index matches a recomputation from the queue scan,
//     posting for posting;
//   - no page carries an LSN beyond the end of the log.
func (ms *Store) VerifyIntegrity() error {
	ms.qmu.RLock()
	queues := make([]*Queue, 0, len(ms.queues))
	for _, q := range ms.queues {
		queues = append(queues, q)
	}
	ms.qmu.RUnlock()

	expectPostings := 0
	countPostings := func(q *Queue, check bool) error {
		q.mu.RLock()
		defer q.mu.RUnlock()
		for _, m := range q.msgs {
			if m.dead.Load() || ms.propIndex == nil {
				continue
			}
			for k, v := range m.props {
				if !indexableProp(k) {
					continue
				}
				key := store.IndexKey(uint64(m.id), k, v.StringValue())
				if _, ok := ms.propIndex.Get(key); check && !ok {
					return fmt.Errorf("message %d: property %q=%q missing from index", m.id, k, v.StringValue())
				}
				expectPostings++
			}
		}
		return nil
	}
	for _, q := range queues {
		if q.Mode != Persistent {
			if err := countPostings(q, true); err != nil {
				return err
			}
			continue
		}
		// Payload heap: decodes, unique ids, matches in-memory state.
		seen := map[MsgID]bool{}
		var scanErr error
		err := ms.ps.Scan(q.heap, func(rid store.RID, payload []byte) bool {
			m, err := decodeMessage(payload)
			if err != nil {
				scanErr = fmt.Errorf("queue %s: record %s does not decode: %w", q.Name, rid, err)
				return false
			}
			if seen[m.id] {
				scanErr = fmt.Errorf("queue %s: message %d appears twice in the heap", q.Name, m.id)
				return false
			}
			seen[m.id] = true
			live := ms.lookup(m.id)
			if live == nil {
				scanErr = fmt.Errorf("queue %s: on-disk message %d missing from the rebuilt store", q.Name, m.id)
				return false
			}
			if live.q != q {
				scanErr = fmt.Errorf("message %d: on disk in queue %s, in memory in %s", m.id, q.Name, live.q.Name)
				return false
			}
			if len(live.props) != len(m.props) {
				scanErr = fmt.Errorf("message %d: %d props on disk, %d in memory", m.id, len(m.props), len(live.props))
				return false
			}
			for k, v := range m.props {
				lv, ok := live.props[k]
				if !ok || lv.StringValue() != v.StringValue() {
					scanErr = fmt.Errorf("message %d: property %q mismatch", m.id, k)
					return false
				}
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return err
		}

		// Status side-heap: every record joins to a payload of this queue
		// or is a tolerated orphan; joined flags agree with memory.
		err = ms.ps.Scan(q.statusHeap, func(rid store.RID, payload []byte) bool {
			if len(payload) != statusRecSize {
				scanErr = fmt.Errorf("queue %s: status record %s has %d bytes", q.Name, rid, len(payload))
				return false
			}
			id := MsgID(binary.LittleEndian.Uint64(payload))
			processed := payload[8]&statusProcessed != 0
			if !seen[id] {
				return true // orphan: payload delete durable, status delete lost
			}
			live := ms.lookup(id)
			if live == nil {
				scanErr = fmt.Errorf("queue %s: status for %d but message not rebuilt", q.Name, id)
				return false
			}
			if live.statusRID == rid && live.processed.Load() != processed {
				scanErr = fmt.Errorf("message %d: processed=%v in memory, %v in status heap", id, live.processed.Load(), processed)
				return false
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return err
		}

		// Memory → disk direction: every live message is on disk, and its
		// index postings exist.
		q.mu.RLock()
		for _, m := range q.msgs {
			if !m.dead.Load() && !seen[m.id] {
				q.mu.RUnlock()
				return fmt.Errorf("queue %s: live message %d has no heap record", q.Name, m.id)
			}
		}
		q.mu.RUnlock()
		if err := countPostings(q, true); err != nil {
			return err
		}
	}
	if ms.propIndex != nil && ms.propIndex.Len() != expectPostings {
		return fmt.Errorf("property index has %d postings, queue scan expects %d", ms.propIndex.Len(), expectPostings)
	}
	// Session heap: every record decodes, and the newest on-disk version of
	// each key matches the in-memory snapshot the gateway trusts.
	if h, ok := ms.ps.Heap(sessionsHeapName); ok {
		best := map[sessionKey]uint64{}
		var scanErr error
		err := ms.ps.Scan(h, func(rid store.RID, data []byte) bool {
			ver, s, err := decodeSession(data)
			if err != nil {
				scanErr = fmt.Errorf("session record %s does not decode: %w", rid, err)
				return false
			}
			key := sessionKey{kind: s.Kind, endpoint: s.Endpoint, peer: s.Peer}
			if ver > best[key] {
				best[key] = ver
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return err
		}
		ms.sessMu.Lock()
		for key, ver := range best {
			e := ms.sessions[key]
			if e == nil || e.ver != ver {
				ms.sessMu.Unlock()
				return fmt.Errorf("session %v/%q/%q: on-disk version %d not the published snapshot", key.kind, key.endpoint, key.peer, ver)
			}
		}
		ms.sessMu.Unlock()
	}
	return ms.ps.VerifyPageLSNs()
}

// DiskError reports the underlying page store's sticky I/O error, if any;
// the engine polls it to detect a dead device and enter degraded mode.
func (ms *Store) DiskError() error { return ms.ps.DiskError() }
