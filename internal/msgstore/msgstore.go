// Package msgstore implements the Demaq message store: transactional XML
// message queues (persistent and transient), message properties, and
// master-data collections, layered over the page store (internal/store).
//
// The store follows the paper's append-only model (Sec. 2.3.3): message
// payloads are never modified after enqueue; the only in-place mutation is
// the processed flag, and physical removal is driven by the retention
// logic in internal/slicing via redo-only batch deletes.
//
// Concurrency: there is no store-wide mutex. State is striped so that
// independent transactions never contend (Sec. 4.3's fine-grained locking
// carried into the store itself):
//
//   - the queue registry has its own RWMutex (DDL is rare);
//   - each Queue guards its message list with a per-queue RWMutex;
//   - the byID index is sharded by message ID with per-shard RWMutexes;
//   - message IDs come from an atomic counter;
//   - collections have per-collection mutexes under a registry RWMutex;
//   - the processed/dead message flags are atomics.
//
// Lock discipline: no code path holds two of these locks at once (queue
// and shard locks are always taken one after the other), so there is no
// lock ordering to maintain and no deadlock potential. Txn.Commit runs the
// page-store transaction without any msgstore lock held, which lets
// concurrent committers overlap inside the WAL and coalesce their fsyncs
// (group commit).
package msgstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"demaq/internal/store"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// MsgID identifies a message; IDs are assigned in enqueue order and define
// the temporal order the scheduler respects.
type MsgID uint64

// QueueMode distinguishes persistent from transient queues (Sec. 2.1.1).
type QueueMode uint8

// Queue modes.
const (
	Persistent QueueMode = iota
	Transient
)

// msgMeta is the in-memory descriptor of one message. Payloads of
// persistent messages stay on disk and are parsed on demand through the
// document cache; transient messages keep their document in memory.
// id, rid, doc, props, enqueued and q are immutable once the message is
// published; processed and dead are the only mutable fields.
type msgMeta struct {
	id  MsgID
	rid store.RID // persistent queues
	// statusRID locates the message's 9-byte record in the queue's status
	// side-heap; the zero RID (page 0 is the store header) means the record
	// predates the side-heap and processed marking falls back to rewriting
	// the payload record's status byte in place.
	statusRID store.RID
	doc       *xmldom.Node
	props     map[string]xdm.Value
	enqueued  time.Time
	q         *Queue
	binary    bool // payload stored in the binary tree encoding
	processed atomic.Bool
	dead      atomic.Bool // physically removed
}

// status returns the on-disk status byte of the message. The processed
// write path (Txn.Commit, store.Txn.SetByte) rewrites the whole byte, so
// it must re-synthesize the payload-format bit alongside the flag.
// Authoritative in the status side-heap record; the copy in the payload
// record is written once at insert and only consulted when no side-heap
// entry exists (legacy stores).
func (m *msgMeta) status(processed bool) byte {
	s := byte(0)
	if processed {
		s |= statusProcessed
	}
	if m.binary {
		s |= statusBinaryPayload
	}
	return s
}

// Queue is one message queue.
type Queue struct {
	Name     string
	Mode     QueueMode
	Priority int

	heap store.HeapID // persistent queues

	// statusHeap holds one compact [msgID, status] record per persistent
	// message, so marking a batch processed dirties a handful of dense
	// status pages instead of every payload page the batch lives on —
	// payload records stay immutable after insert, which is the paper's
	// append-only store taken literally (Sec. 2.3.3).
	statusHeap store.HeapID

	mu   sync.RWMutex
	msgs []*msgMeta // in id order; GC'd entries flagged dead and compacted
	live int
}

// Message is the externally visible message descriptor.
type Message struct {
	ID        MsgID
	Queue     string
	Props     map[string]xdm.Value
	Enqueued  time.Time
	Processed bool
}

// idShardCount stripes the byID index. Power of two so the shard selector
// compiles to a mask.
const idShardCount = 32

type idShard struct {
	mu   sync.RWMutex
	byID map[MsgID]*msgMeta
}

// Store is the message store.
type Store struct {
	ps    *store.Store
	cache *docCache

	// propIndex is the secondary index (property, value) → MsgID over the
	// string form of every non-system message property, nil when disabled
	// (Options.NoPropertyIndex). Like the slicing index it is derived data:
	// maintained at commit publish time and on Remove, rebuilt from the
	// heaps on Open, never logged. Keys use the length-prefixed codec
	// (store.IndexKey), so embedded separator bytes cannot leak entries
	// across (property, value) pairs, and the big-endian id suffix keeps
	// each pair's postings in ascending id order.
	propIndex *store.BTree

	// textPayloads selects the on-disk payload format for new writes
	// (Options.TextPayloads); reads dispatch on the per-record format bit.
	textPayloads     bool
	payloadEncBytes  atomic.Uint64
	payloadTextBytes atomic.Uint64

	nextID atomic.Uint64 // next MsgID to assign

	qmu    sync.RWMutex // guards the queues map (not queue contents)
	queues map[string]*Queue

	shards [idShardCount]idShard

	cmu   sync.RWMutex // guards the colls map (not collection contents)
	colls map[string]*collection

	// Reliable-messaging session snapshots (session.go): newest committed
	// version per key, plus the on-disk record versions for compaction.
	// Stale versions are garbage-collected by a background goroutine so the
	// admit path never pays a delete commit (channel closed by Close).
	sessMu     sync.Mutex
	sessions   map[sessionKey]*sessionEntry
	sessVer    atomic.Uint64
	sessClosed bool
	sessGC     chan []store.RID
	sessGCDone chan struct{}
}

type collection struct {
	name string
	heap store.HeapID

	mu   sync.RWMutex
	docs []*xmldom.Node
}

func (ms *Store) shard(id MsgID) *idShard { return &ms.shards[uint64(id)%idShardCount] }

// lookup returns the live message meta for id, or nil.
func (ms *Store) lookup(id MsgID) *msgMeta {
	sh := ms.shard(id)
	sh.mu.RLock()
	m := sh.byID[id]
	sh.mu.RUnlock()
	if m == nil || m.dead.Load() {
		return nil
	}
	return m
}

// getQueue resolves a queue by name under the registry read lock.
func (ms *Store) getQueue(name string) *Queue {
	ms.qmu.RLock()
	q := ms.queues[name]
	ms.qmu.RUnlock()
	return q
}

// Options configure the message store.
type Options struct {
	Store     store.Options
	CacheDocs int // parsed-document cache capacity (default 4096)

	// TextPayloads stores message payloads and collection documents as
	// serialized XML text instead of the binary tree encoding. This is
	// the pre-E12 baseline, kept reachable for comparison benchmarks;
	// rehydration then pays a full character-level parse per doc-cache
	// miss. Reads always dispatch on the stored format, so a store
	// written in one mode opens fine in the other.
	TextPayloads bool

	// NoPropertyIndex disables the secondary (property, value) → MsgID
	// index. This is the scan baseline of experiment E17: index-backed
	// dispatch and merged slice access then fall back to per-message
	// property probes and whole-queue scans.
	NoPropertyIndex bool
}

// DefaultOptions returns production settings.
func DefaultOptions() Options {
	return Options{Store: store.DefaultOptions(), CacheDocs: 4096}
}

// Stats reports message-store counters: document-cache effectiveness and
// payload bytes written per storage format (experiment E12).
type Stats struct {
	DocCacheHits      uint64
	DocCacheMisses    uint64
	DocCacheEvictions uint64
	DocCacheSize      int
	DocCacheCap       int

	// PayloadEncodedBytes / PayloadTextBytes accumulate the payload sizes
	// written in the binary tree encoding and as XML text respectively
	// (messages and collection documents).
	PayloadEncodedBytes uint64
	PayloadTextBytes    uint64
}

// Stats returns a snapshot of the store counters.
func (ms *Store) Stats() Stats {
	st := ms.cache.stats()
	st.PayloadEncodedBytes = ms.payloadEncBytes.Load()
	st.PayloadTextBytes = ms.payloadTextBytes.Load()
	return st
}

// FlushDocCache empties the document cache; rehydration benchmarks use it
// to measure the cold path.
func (ms *Store) FlushDocCache() { ms.cache.clear() }

// Open opens the message store in dir, recovering state from disk:
// persistent queues and their messages (including processed flags) are
// rebuilt by scanning the heaps, exactly as the paper's recovery story
// requires — scheduler and slice state are derived data.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CacheDocs == 0 {
		opts.CacheDocs = 4096
	}
	ps, err := store.Open(dir, opts.Store)
	if err != nil {
		return nil, err
	}
	ms := &Store{
		ps:           ps,
		queues:       map[string]*Queue{},
		colls:        map[string]*collection{},
		sessions:     map[sessionKey]*sessionEntry{},
		cache:        newDocCache(opts.CacheDocs),
		textPayloads: opts.TextPayloads,
	}
	if !opts.NoPropertyIndex {
		ms.propIndex = store.NewBTree()
	}
	for i := range ms.shards {
		ms.shards[i].byID = map[MsgID]*msgMeta{}
	}
	ms.nextID.Store(1)
	for _, name := range ps.HeapNames() {
		switch {
		case len(name) > 2 && name[:2] == "q:":
			if err := ms.loadQueue(name[2:]); err != nil {
				ps.Close()
				return nil, err
			}
		case len(name) > 2 && name[:2] == "c:":
			if err := ms.loadCollection(name[2:]); err != nil {
				ps.Close()
				return nil, err
			}
		}
	}
	if err := ms.loadSessions(); err != nil {
		ps.Close()
		return nil, err
	}
	ms.sessGC = make(chan []store.RID, 256)
	ms.sessGCDone = make(chan struct{})
	go ms.sessionCompactor()
	return ms, nil
}

// Close stops the session compactor and closes the underlying store.
func (ms *Store) Close() error {
	ms.sessMu.Lock()
	if !ms.sessClosed {
		ms.sessClosed = true
		close(ms.sessGC)
	}
	ms.sessMu.Unlock()
	<-ms.sessGCDone
	return ms.ps.Close()
}

// Crash simulates a crash for tests.
func (ms *Store) Crash() { ms.ps.CrashForTest() }

// PageStore exposes the underlying page store (stats, checkpoints).
func (ms *Store) PageStore() *store.Store { return ms.ps }

// CreateQueue declares a queue. Declaring an existing queue updates its
// priority and verifies the mode matches.
func (ms *Store) CreateQueue(name string, mode QueueMode, priority int) (*Queue, error) {
	ms.qmu.Lock()
	defer ms.qmu.Unlock()
	if q, ok := ms.queues[name]; ok {
		if q.Mode != mode {
			return nil, fmt.Errorf("msgstore: queue %q exists with different mode", name)
		}
		q.Priority = priority
		return q, nil
	}
	q := &Queue{Name: name, Mode: mode, Priority: priority}
	if mode == Persistent {
		h, err := ms.ps.CreateHeap("q:" + name)
		if err != nil {
			return nil, err
		}
		q.heap = h
		sh, err := ms.ps.CreateHeap("s:" + name)
		if err != nil {
			return nil, err
		}
		q.statusHeap = sh
	}
	ms.queues[name] = q
	return q, nil
}

// Queue returns a queue by name.
func (ms *Store) Queue(name string) (*Queue, bool) {
	q := ms.getQueue(name)
	return q, q != nil
}

// QueueNames lists declared queues.
func (ms *Store) QueueNames() []string {
	ms.qmu.RLock()
	defer ms.qmu.RUnlock()
	out := make([]string, 0, len(ms.queues))
	for n := range ms.queues {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (ms *Store) loadQueue(name string) error {
	h, _ := ms.ps.Heap("q:" + name)
	q := &Queue{Name: name, Mode: Persistent, heap: h}
	// Scan the status side-heap first so the payload scan can join against
	// it; a side-heap entry is authoritative over the payload record's
	// status byte (which is only written at insert). Stores written before
	// the side-heap existed get one created now — their new messages use
	// it, while pre-existing records keep the in-place fallback.
	type statusEntry struct {
		rid    store.RID
		status byte
	}
	var statuses map[MsgID]statusEntry
	if sh, ok := ms.ps.Heap("s:" + name); ok {
		q.statusHeap = sh
		statuses = make(map[MsgID]statusEntry)
		err := ms.ps.Scan(sh, func(rid store.RID, payload []byte) bool {
			if len(payload) == statusRecSize {
				statuses[MsgID(binary.LittleEndian.Uint64(payload))] = statusEntry{rid: rid, status: payload[8]}
			}
			return true
		})
		if err != nil {
			return err
		}
	} else {
		sh, err := ms.ps.CreateHeap("s:" + name)
		if err != nil {
			return err
		}
		q.statusHeap = sh
	}
	err := ms.ps.Scan(h, func(rid store.RID, payload []byte) bool {
		m, err := decodeMessage(payload)
		if err != nil {
			return true // skip corrupt records; recovery guarantees should prevent this
		}
		m.rid = rid
		m.q = q
		if e, ok := statuses[m.id]; ok {
			m.statusRID = e.rid
			m.processed.Store(e.status&statusProcessed != 0)
		}
		q.msgs = append(q.msgs, m)
		if !m.dead.Load() {
			q.live++
		}
		sh := ms.shard(m.id)
		sh.byID[m.id] = m
		ms.indexMessage(m)
		if next := uint64(m.id) + 1; next > ms.nextID.Load() {
			ms.nextID.Store(next)
		}
		return true
	})
	if err != nil {
		return err
	}
	sort.Slice(q.msgs, func(i, j int) bool { return q.msgs[i].id < q.msgs[j].id })
	ms.queues[name] = q
	return nil
}

func (ms *Store) loadCollection(name string) error {
	h, _ := ms.ps.Heap("c:" + name)
	c := &collection{name: name, heap: h}
	err := ms.ps.Scan(h, func(_ store.RID, payload []byte) bool {
		doc, err := xmldom.Materialize(payload)
		if err == nil {
			c.docs = append(c.docs, doc)
		}
		return true
	})
	if err != nil {
		return err
	}
	ms.colls[name] = c
	return nil
}

// --- message record encoding ---
//
//	[0]   status byte: bit0 processed, bit1 binary-encoded payload
//	[1:9] msgID
//	[9:17] enqueued unix nanos
//	[17:19] property count
//	per property: u16 name len, name, u8 type, u16 value len, value (lexical)
//	u32 payload len, payload (binary tree encoding, or serialized XML text
//	when bit1 is unset)
//
// Payload records are immutable after insert. The live status byte of a
// message lives in the queue's status side-heap ("s:" + name) as a 9-byte
// record [msgID u64 LE, status byte]: ~600 statuses share one 8KB page, so
// marking a claimed batch processed dirties one or two dense pages instead
// of rewriting a payload page per message. The copy of the status byte at
// payload offset 0 is consulted only for records written before the
// side-heap existed, which are also the only ones still updated in place
// (store.Txn.SetByte rewrites the whole byte, so both bits must be
// re-synthesized whenever it is written).

const (
	statusProcessed     = byte(1 << 0)
	statusBinaryPayload = byte(1 << 1)

	statusRecSize = 9 // [0:8] msgID little-endian, [8] status byte
)

// appendStatusRecord builds the status side-heap record for a message.
func appendStatusRecord(dst []byte, id MsgID, status byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(id))
	return append(dst, status)
}

// recBufPool recycles record build buffers across commits, so a steady
// enqueue load does not allocate a fresh record buffer per message (the
// page store copies the record on Insert).
var recBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// appendMessageRecord appends the full record of m — header, properties
// and the payload rendered from doc in the store's configured format — and
// returns the extended buffer.
func (ms *Store) appendMessageRecord(dst []byte, m *msgMeta, doc *xmldom.Node) []byte {
	m.binary = !ms.textPayloads
	type kv struct {
		k, v string
		t    uint8
	}
	props := make([]kv, 0, len(m.props))
	for k, v := range m.props {
		props = append(props, kv{k: k, v: v.StringValue(), t: uint8(v.T)})
	}
	sort.Slice(props, func(i, j int) bool { return props[i].k < props[j].k })
	dst = append(dst, m.status(m.processed.Load()))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.id))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.enqueued.UnixNano()))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(props)))
	for _, p := range props {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.k)))
		dst = append(dst, p.k...)
		dst = append(dst, p.t)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.v)))
		dst = append(dst, p.v...)
	}
	lenOff := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	if m.binary {
		dst = xmldom.EncodeAppend(dst, doc)
		ms.payloadEncBytes.Add(uint64(len(dst) - lenOff - 4))
	} else {
		dst = xmldom.AppendSerialize(dst, doc)
		ms.payloadTextBytes.Add(uint64(len(dst) - lenOff - 4))
	}
	binary.LittleEndian.PutUint32(dst[lenOff:], uint32(len(dst)-lenOff-4))
	return dst
}

// appendEncodedRecord appends the full record of m with a payload that is
// already in the binary document encoding (streaming ingest): the header is
// identical to appendMessageRecord, the payload bytes are copied verbatim.
func (ms *Store) appendEncodedRecord(dst []byte, m *msgMeta, enc []byte) []byte {
	m.binary = true
	type kv struct {
		k, v string
		t    uint8
	}
	props := make([]kv, 0, len(m.props))
	for k, v := range m.props {
		props = append(props, kv{k: k, v: v.StringValue(), t: uint8(v.T)})
	}
	sort.Slice(props, func(i, j int) bool { return props[i].k < props[j].k })
	dst = append(dst, m.status(m.processed.Load()))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.id))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.enqueued.UnixNano()))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(props)))
	for _, p := range props {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.k)))
		dst = append(dst, p.k...)
		dst = append(dst, p.t)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.v)))
		dst = append(dst, p.v...)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(enc)))
	dst = append(dst, enc...)
	ms.payloadEncBytes.Add(uint64(len(enc)))
	return dst
}

func decodeMessage(data []byte) (*msgMeta, error) {
	if len(data) < 19 {
		return nil, fmt.Errorf("msgstore: record too short")
	}
	m := &msgMeta{
		id:       MsgID(binary.LittleEndian.Uint64(data[1:])),
		enqueued: time.Unix(0, int64(binary.LittleEndian.Uint64(data[9:]))).UTC(),
		binary:   data[0]&statusBinaryPayload != 0,
	}
	m.processed.Store(data[0]&statusProcessed != 0)
	n := int(binary.LittleEndian.Uint16(data[17:]))
	off := 19
	if n > 0 {
		m.props = make(map[string]xdm.Value, n)
	}
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			return nil, fmt.Errorf("msgstore: truncated property")
		}
		kl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+kl+1+2 > len(data) {
			return nil, fmt.Errorf("msgstore: truncated property key")
		}
		key := string(data[off : off+kl])
		off += kl
		typ := xdm.Type(data[off])
		off++
		vl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+vl > len(data) {
			return nil, fmt.Errorf("msgstore: truncated property value")
		}
		val := string(data[off : off+vl])
		off += vl
		v, err := xdm.NewString(val).Cast(typ)
		if err != nil {
			v = xdm.NewString(val)
		}
		m.props[key] = v
	}
	if off+4 > len(data) {
		return nil, fmt.Errorf("msgstore: truncated payload length")
	}
	plen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+plen > len(data) {
		return nil, fmt.Errorf("msgstore: truncated payload")
	}
	return m, nil
}

// --- property secondary index ---

// indexableProp excludes the engine's system namespace from the property
// index: "demaq:" properties (creating rule, wall-clock timestamps) are
// never dispatch predicates or slice keys, and timestamps are near-unique —
// indexing them would double the index for rule-created messages without
// ever serving a probe.
func indexableProp(name string) bool {
	return len(name) < 6 || name[:6] != "demaq:"
}

// indexMessage inserts a published message's property postings. Called with
// no msgstore lock held (the B-tree has its own latches); loadQueue calls it
// single-threaded during recovery.
func (ms *Store) indexMessage(m *msgMeta) {
	if ms.propIndex == nil {
		return
	}
	for k, v := range m.props {
		if indexableProp(k) {
			ms.propIndex.Insert(store.IndexKey(uint64(m.id), k, v.StringValue()), nil)
		}
	}
}

// unindexMessage drops a removed message's postings; the caller must not
// hold shard or queue locks.
func (ms *Store) unindexMessage(m *msgMeta) {
	if ms.propIndex == nil {
		return
	}
	for k, v := range m.props {
		if indexableProp(k) {
			ms.propIndex.Delete(store.IndexKey(uint64(m.id), k, v.StringValue()))
		}
	}
}

// PropertyIndexEnabled reports whether the secondary property index is
// maintained; when false the Property* scans return nothing and callers
// must use their scan fallbacks.
func (ms *Store) PropertyIndexEnabled() bool { return ms.propIndex != nil }

// PropertyIDsAfter appends to dst the ids of live messages whose property
// prop has the string form value and whose id is strictly greater than
// after, in ascending id order — one contiguous index range scan.
func (ms *Store) PropertyIDsAfter(prop, value string, after MsgID, dst []MsgID) []MsgID {
	if ms.propIndex == nil {
		return dst
	}
	prefix := store.IndexKeyPrefix(prop, value)
	lo := store.AppendIndexKeyID(append([]byte(nil), prefix...), uint64(after)+1)
	ms.propIndex.ScanPrefixFrom(prefix, lo, func(k, _ []byte) bool {
		id := MsgID(store.IndexKeyID(k))
		if ms.lookup(id) != nil {
			dst = append(dst, id)
		}
		return true
	})
	return dst
}

// PropertyIDsRange appends to dst the ids of live messages whose property
// prop has the string form value, restricted to the window lo <= id <= hi,
// ascending. Batch dispatch probes use it with the claimed batch's id
// window.
func (ms *Store) PropertyIDsRange(prop, value string, lo, hi MsgID, dst []MsgID) []MsgID {
	if ms.propIndex == nil || hi < lo {
		return dst
	}
	prefix := store.IndexKeyPrefix(prop, value)
	loKey := store.AppendIndexKeyID(append([]byte(nil), prefix...), uint64(lo))
	visit := func(k, _ []byte) bool {
		id := MsgID(store.IndexKeyID(k))
		if ms.lookup(id) != nil {
			dst = append(dst, id)
		}
		return true
	}
	if hi == ^MsgID(0) {
		ms.propIndex.ScanPrefixFrom(prefix, loKey, visit)
	} else {
		hiKey := store.AppendIndexKeyID(prefix, uint64(hi)+1)
		ms.propIndex.Scan(loKey, hiKey, visit)
	}
	return dst
}

// payloadOffset computes where the payload starts in an encoded record, or
// -1 if the record is truncated or inconsistent. Records are validated by
// decodeMessage at load, but Doc re-reads them from disk, so the walk
// re-checks bounds rather than trusting the stored lengths.
func payloadOffset(data []byte) int {
	if len(data) < 19 {
		return -1
	}
	n := int(binary.LittleEndian.Uint16(data[17:]))
	off := 19
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			return -1
		}
		kl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2 + kl + 1
		if off+2 > len(data) {
			return -1
		}
		vl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2 + vl
	}
	off += 4
	if off > len(data) {
		return -1
	}
	return off
}
