// Package msgstore implements the Demaq message store: transactional XML
// message queues (persistent and transient), message properties, and
// master-data collections, layered over the page store (internal/store).
//
// The store follows the paper's append-only model (Sec. 2.3.3): message
// payloads are never modified after enqueue; the only in-place mutation is
// the processed flag, and physical removal is driven by the retention
// logic in internal/slicing via redo-only batch deletes.
//
// Concurrency: there is no store-wide mutex. State is striped so that
// independent transactions never contend (Sec. 4.3's fine-grained locking
// carried into the store itself):
//
//   - the queue registry has its own RWMutex (DDL is rare);
//   - each Queue guards its message list with a per-queue RWMutex;
//   - the byID index is sharded by message ID with per-shard RWMutexes;
//   - message IDs come from an atomic counter;
//   - collections have per-collection mutexes under a registry RWMutex;
//   - the processed/dead message flags are atomics.
//
// Lock discipline: no code path holds two of these locks at once (queue
// and shard locks are always taken one after the other), so there is no
// lock ordering to maintain and no deadlock potential. Txn.Commit runs the
// page-store transaction without any msgstore lock held, which lets
// concurrent committers overlap inside the WAL and coalesce their fsyncs
// (group commit).
package msgstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"demaq/internal/store"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// MsgID identifies a message; IDs are assigned in enqueue order and define
// the temporal order the scheduler respects.
type MsgID uint64

// QueueMode distinguishes persistent from transient queues (Sec. 2.1.1).
type QueueMode uint8

// Queue modes.
const (
	Persistent QueueMode = iota
	Transient
)

// msgMeta is the in-memory descriptor of one message. Payloads of
// persistent messages stay on disk and are parsed on demand through the
// document cache; transient messages keep their document in memory.
// id, rid, doc, props, enqueued and q are immutable once the message is
// published; processed and dead are the only mutable fields.
type msgMeta struct {
	id        MsgID
	rid       store.RID // persistent queues
	doc       *xmldom.Node
	props     map[string]xdm.Value
	enqueued  time.Time
	q         *Queue
	processed atomic.Bool
	dead      atomic.Bool // physically removed
}

// Queue is one message queue.
type Queue struct {
	Name     string
	Mode     QueueMode
	Priority int

	heap store.HeapID // persistent queues

	mu   sync.RWMutex
	msgs []*msgMeta // in id order; GC'd entries flagged dead and compacted
	live int
}

// Message is the externally visible message descriptor.
type Message struct {
	ID        MsgID
	Queue     string
	Props     map[string]xdm.Value
	Enqueued  time.Time
	Processed bool
}

// idShardCount stripes the byID index. Power of two so the shard selector
// compiles to a mask.
const idShardCount = 32

type idShard struct {
	mu   sync.RWMutex
	byID map[MsgID]*msgMeta
}

// Store is the message store.
type Store struct {
	ps    *store.Store
	cache *docCache

	nextID atomic.Uint64 // next MsgID to assign

	qmu    sync.RWMutex // guards the queues map (not queue contents)
	queues map[string]*Queue

	shards [idShardCount]idShard

	cmu   sync.RWMutex // guards the colls map (not collection contents)
	colls map[string]*collection
}

type collection struct {
	name string
	heap store.HeapID

	mu   sync.RWMutex
	docs []*xmldom.Node
}

func (ms *Store) shard(id MsgID) *idShard { return &ms.shards[uint64(id)%idShardCount] }

// lookup returns the live message meta for id, or nil.
func (ms *Store) lookup(id MsgID) *msgMeta {
	sh := ms.shard(id)
	sh.mu.RLock()
	m := sh.byID[id]
	sh.mu.RUnlock()
	if m == nil || m.dead.Load() {
		return nil
	}
	return m
}

// getQueue resolves a queue by name under the registry read lock.
func (ms *Store) getQueue(name string) *Queue {
	ms.qmu.RLock()
	q := ms.queues[name]
	ms.qmu.RUnlock()
	return q
}

// Options configure the message store.
type Options struct {
	Store     store.Options
	CacheDocs int // parsed-document cache capacity (default 4096)
}

// DefaultOptions returns production settings.
func DefaultOptions() Options {
	return Options{Store: store.DefaultOptions(), CacheDocs: 4096}
}

// Open opens the message store in dir, recovering state from disk:
// persistent queues and their messages (including processed flags) are
// rebuilt by scanning the heaps, exactly as the paper's recovery story
// requires — scheduler and slice state are derived data.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CacheDocs == 0 {
		opts.CacheDocs = 4096
	}
	ps, err := store.Open(dir, opts.Store)
	if err != nil {
		return nil, err
	}
	ms := &Store{
		ps:     ps,
		queues: map[string]*Queue{},
		colls:  map[string]*collection{},
		cache:  newDocCache(opts.CacheDocs),
	}
	for i := range ms.shards {
		ms.shards[i].byID = map[MsgID]*msgMeta{}
	}
	ms.nextID.Store(1)
	for _, name := range ps.HeapNames() {
		switch {
		case len(name) > 2 && name[:2] == "q:":
			if err := ms.loadQueue(name[2:]); err != nil {
				ps.Close()
				return nil, err
			}
		case len(name) > 2 && name[:2] == "c:":
			if err := ms.loadCollection(name[2:]); err != nil {
				ps.Close()
				return nil, err
			}
		}
	}
	return ms, nil
}

// Close closes the underlying store.
func (ms *Store) Close() error { return ms.ps.Close() }

// Crash simulates a crash for tests.
func (ms *Store) Crash() { ms.ps.CrashForTest() }

// PageStore exposes the underlying page store (stats, checkpoints).
func (ms *Store) PageStore() *store.Store { return ms.ps }

// CreateQueue declares a queue. Declaring an existing queue updates its
// priority and verifies the mode matches.
func (ms *Store) CreateQueue(name string, mode QueueMode, priority int) (*Queue, error) {
	ms.qmu.Lock()
	defer ms.qmu.Unlock()
	if q, ok := ms.queues[name]; ok {
		if q.Mode != mode {
			return nil, fmt.Errorf("msgstore: queue %q exists with different mode", name)
		}
		q.Priority = priority
		return q, nil
	}
	q := &Queue{Name: name, Mode: mode, Priority: priority}
	if mode == Persistent {
		h, err := ms.ps.CreateHeap("q:" + name)
		if err != nil {
			return nil, err
		}
		q.heap = h
	}
	ms.queues[name] = q
	return q, nil
}

// Queue returns a queue by name.
func (ms *Store) Queue(name string) (*Queue, bool) {
	q := ms.getQueue(name)
	return q, q != nil
}

// QueueNames lists declared queues.
func (ms *Store) QueueNames() []string {
	ms.qmu.RLock()
	defer ms.qmu.RUnlock()
	out := make([]string, 0, len(ms.queues))
	for n := range ms.queues {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (ms *Store) loadQueue(name string) error {
	h, _ := ms.ps.Heap("q:" + name)
	q := &Queue{Name: name, Mode: Persistent, heap: h}
	err := ms.ps.Scan(h, func(rid store.RID, payload []byte) bool {
		m, err := decodeMessage(payload)
		if err != nil {
			return true // skip corrupt records; recovery guarantees should prevent this
		}
		m.rid = rid
		m.q = q
		q.msgs = append(q.msgs, m)
		if !m.dead.Load() {
			q.live++
		}
		sh := ms.shard(m.id)
		sh.byID[m.id] = m
		if next := uint64(m.id) + 1; next > ms.nextID.Load() {
			ms.nextID.Store(next)
		}
		return true
	})
	if err != nil {
		return err
	}
	sort.Slice(q.msgs, func(i, j int) bool { return q.msgs[i].id < q.msgs[j].id })
	ms.queues[name] = q
	return nil
}

func (ms *Store) loadCollection(name string) error {
	h, _ := ms.ps.Heap("c:" + name)
	c := &collection{name: name, heap: h}
	err := ms.ps.Scan(h, func(_ store.RID, payload []byte) bool {
		doc, err := xmldom.Parse(payload)
		if err == nil {
			c.docs = append(c.docs, doc)
		}
		return true
	})
	if err != nil {
		return err
	}
	ms.colls[name] = c
	return nil
}

// --- message record encoding ---
//
//	[0]   status byte: bit0 processed
//	[1:9] msgID
//	[9:17] enqueued unix nanos
//	[17:19] property count
//	per property: u16 name len, name, u8 type, u16 value len, value (lexical)
//	u32 payload len, payload (serialized XML)

func encodeMessage(m *msgMeta, payload []byte) []byte {
	size := 19
	type kv struct {
		k, v string
		t    uint8
	}
	props := make([]kv, 0, len(m.props))
	for k, v := range m.props {
		e := kv{k: k, v: v.StringValue(), t: uint8(v.T)}
		props = append(props, e)
		size += 2 + len(e.k) + 1 + 2 + len(e.v)
	}
	sort.Slice(props, func(i, j int) bool { return props[i].k < props[j].k })
	size += 4 + len(payload)
	out := make([]byte, 0, size)
	status := byte(0)
	if m.processed.Load() {
		status |= 1
	}
	out = append(out, status)
	out = binary.LittleEndian.AppendUint64(out, uint64(m.id))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.enqueued.UnixNano()))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(props)))
	for _, p := range props {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(p.k)))
		out = append(out, p.k...)
		out = append(out, p.t)
		out = binary.LittleEndian.AppendUint16(out, uint16(len(p.v)))
		out = append(out, p.v...)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return out
}

func decodeMessage(data []byte) (*msgMeta, error) {
	if len(data) < 19 {
		return nil, fmt.Errorf("msgstore: record too short")
	}
	m := &msgMeta{
		id:       MsgID(binary.LittleEndian.Uint64(data[1:])),
		enqueued: time.Unix(0, int64(binary.LittleEndian.Uint64(data[9:]))).UTC(),
	}
	m.processed.Store(data[0]&1 != 0)
	n := int(binary.LittleEndian.Uint16(data[17:]))
	off := 19
	if n > 0 {
		m.props = make(map[string]xdm.Value, n)
	}
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			return nil, fmt.Errorf("msgstore: truncated property")
		}
		kl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		key := string(data[off : off+kl])
		off += kl
		typ := xdm.Type(data[off])
		off++
		vl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		val := string(data[off : off+vl])
		off += vl
		v, err := xdm.NewString(val).Cast(typ)
		if err != nil {
			v = xdm.NewString(val)
		}
		m.props[key] = v
	}
	if off+4 > len(data) {
		return nil, fmt.Errorf("msgstore: truncated payload length")
	}
	plen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+plen > len(data) {
		return nil, fmt.Errorf("msgstore: truncated payload")
	}
	return m, nil
}

// payloadOffset computes where the XML payload starts in an encoded record.
func payloadOffset(data []byte) int {
	n := int(binary.LittleEndian.Uint16(data[17:]))
	off := 19
	for i := 0; i < n; i++ {
		kl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2 + kl + 1
		vl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2 + vl
	}
	return off + 4
}
