// Package qdl parses Demaq application programs: the Queue Definition
// Language statements of Sec. 2 (create queue / create property / create
// slicing) and the QML rule definitions of Sec. 3 (create rule). Rule
// bodies and property value expressions are parsed by the shared
// expression parser (internal/xpath); the rule compiler lives in
// internal/rule.
//
// Statements are separated by semicolons; (: ... :) comments are allowed
// anywhere. Example:
//
//	create queue finance kind basic mode persistent;
//	create property orderID as xs:string fixed
//	       queue order value //orderID
//	       queue confirmation value /confirmedOrder/ID;
//	create slicing orders on orderID;
//	create rule newOffer for crm
//	  if (//offerRequest) then do enqueue <check/> into finance;
package qdl

import (
	"fmt"
	"strconv"

	"demaq/internal/xdm"
	"demaq/internal/xpath"
)

// QueueKind enumerates queue kinds (Sec. 2.1).
type QueueKind string

// Queue kinds.
const (
	KindBasic           QueueKind = "basic"
	KindIncomingGateway QueueKind = "incomingGateway"
	KindOutgoingGateway QueueKind = "outgoingGateway"
	KindEcho            QueueKind = "echo"
)

// Policy is one "using NAME policy FILE" clause of a gateway declaration.
type Policy struct {
	Name string
	File string
}

// QueueDecl is a "create queue" statement.
type QueueDecl struct {
	Name       string
	Kind       QueueKind
	Persistent bool
	Schema     string // schema file or inline schema text ("" = none)
	Priority   int
	Interface  string // WSDL file for gateways
	Port       string
	Policies   []Policy
	ErrorQueue string
}

// PropBinding declares the value expression of a property on a queue set.
type PropBinding struct {
	Queues []string
	Value  xpath.Expr
}

// PropertyDecl is a "create property" statement.
type PropertyDecl struct {
	Name      string
	Type      xdm.Type
	TypeName  string
	Inherited bool
	Fixed     bool
	Bindings  []PropBinding
}

// SlicingDecl is a "create slicing" statement.
type SlicingDecl struct {
	Name     string
	Property string
}

// RuleDecl is a "create rule" statement (QML, Sec. 3.3).
type RuleDecl struct {
	Name       string
	Target     string // queue or slicing name
	ErrorQueue string
	Body       xpath.Expr
}

// CollectionDecl is a "create collection" statement (master data for
// fn:collection; an extension the paper's Fig. 7 example presumes).
type CollectionDecl struct {
	Name string
}

// Application is a parsed Demaq program.
type Application struct {
	Queues      []*QueueDecl
	Properties  []*PropertyDecl
	Slicings    []*SlicingDecl
	Rules       []*RuleDecl
	Collections []*CollectionDecl
}

// Parse parses a complete application program.
func Parse(src string) (*Application, error) {
	p, err := xpath.NewParser(src)
	if err != nil {
		return nil, err
	}
	app := &Application{}
	for !p.AtEOF() {
		// Tolerate stray semicolons between statements.
		if p.Peek().Kind == xpath.TokSemicolon {
			if _, err := p.Advance(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.ExpectName("create"); err != nil {
			return nil, err
		}
		kind, err := p.QName()
		if err != nil {
			return nil, err
		}
		switch kind {
		case "queue":
			q, err := parseQueue(p)
			if err != nil {
				return nil, err
			}
			app.Queues = append(app.Queues, q)
		case "property":
			pr, err := parseProperty(p)
			if err != nil {
				return nil, err
			}
			app.Properties = append(app.Properties, pr)
		case "slicing":
			s, err := parseSlicing(p)
			if err != nil {
				return nil, err
			}
			app.Slicings = append(app.Slicings, s)
		case "rule":
			r, err := parseRule(p)
			if err != nil {
				return nil, err
			}
			app.Rules = append(app.Rules, r)
		case "collection":
			name, err := p.QName()
			if err != nil {
				return nil, err
			}
			app.Collections = append(app.Collections, &CollectionDecl{Name: name})
		default:
			return nil, fmt.Errorf("qdl: unknown statement 'create %s'", kind)
		}
		// Statement terminator.
		switch p.Peek().Kind {
		case xpath.TokSemicolon:
			if _, err := p.Advance(); err != nil {
				return nil, err
			}
		case xpath.TokEOF:
		default:
			return nil, fmt.Errorf("qdl: expected ';' after statement, found %s %q at %s",
				p.Peek().Kind, p.Peek().Text, p.Peek().Pos)
		}
	}
	return app, nil
}

// MustParse parses or panics; for tests and fixtures.
func MustParse(src string) *Application {
	app, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return app
}

func parseQueue(p *xpath.Parser) (*QueueDecl, error) {
	name, err := p.QName()
	if err != nil {
		return nil, err
	}
	q := &QueueDecl{Name: name, Kind: KindBasic, Persistent: true}
	seenKind, seenMode := false, false
	for p.Peek().Kind == xpath.TokName {
		switch p.Peek().Text {
		case "kind":
			p.Advance()
			k, err := p.QName()
			if err != nil {
				return nil, err
			}
			switch QueueKind(k) {
			case KindBasic, KindIncomingGateway, KindOutgoingGateway, KindEcho:
				q.Kind = QueueKind(k)
			default:
				return nil, fmt.Errorf("qdl: unknown queue kind %q", k)
			}
			seenKind = true
		case "mode":
			p.Advance()
			m, err := p.QName()
			if err != nil {
				return nil, err
			}
			switch m {
			case "persistent":
				q.Persistent = true
			case "transient":
				q.Persistent = false
			default:
				return nil, fmt.Errorf("qdl: unknown queue mode %q", m)
			}
			seenMode = true
		case "schema":
			p.Advance()
			tok, err := p.ExpectKind(xpath.TokString)
			if err != nil {
				return nil, err
			}
			q.Schema = tok.Text
		case "priority":
			p.Advance()
			tok, err := p.ExpectKind(xpath.TokInteger)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(tok.Text)
			if err != nil {
				return nil, err
			}
			q.Priority = n
		case "interface":
			p.Advance()
			f, err := nameOrString(p)
			if err != nil {
				return nil, err
			}
			q.Interface = f
			if p.Peek().Kind == xpath.TokName && p.Peek().Text == "port" {
				p.Advance()
				port, err := p.QName()
				if err != nil {
					return nil, err
				}
				q.Port = port
			}
		case "using":
			p.Advance()
			pname, err := p.QName()
			if err != nil {
				return nil, err
			}
			if err := p.ExpectName("policy"); err != nil {
				return nil, err
			}
			pfile, err := nameOrString(p)
			if err != nil {
				return nil, err
			}
			q.Policies = append(q.Policies, Policy{Name: pname, File: pfile})
		case "errorqueue":
			p.Advance()
			e, err := p.QName()
			if err != nil {
				return nil, err
			}
			q.ErrorQueue = e
		default:
			goto done
		}
	}
done:
	if !seenKind || !seenMode {
		// The paper's examples always state both; requiring them catches
		// declaration typos early.
		return nil, fmt.Errorf("qdl: queue %q requires 'kind' and 'mode'", q.Name)
	}
	if (q.Kind == KindIncomingGateway || q.Kind == KindOutgoingGateway) && !q.Persistent {
		for _, pol := range q.Policies {
			if pol.Name == "WS-ReliableMessaging" {
				return nil, fmt.Errorf("qdl: queue %q: reliable messaging requires a persistent queue", q.Name)
			}
		}
	}
	return q, nil
}

// nameOrString accepts a bare name token (file names like supplier.wsdl lex
// as one name) or a string literal.
func nameOrString(p *xpath.Parser) (string, error) {
	if p.Peek().Kind == xpath.TokString {
		tok, err := p.Advance()
		return tok.Text, err
	}
	return p.QName()
}

func parseProperty(p *xpath.Parser) (*PropertyDecl, error) {
	name, err := p.QName()
	if err != nil {
		return nil, err
	}
	if err := p.ExpectName("as"); err != nil {
		return nil, err
	}
	typeName, err := p.QName()
	if err != nil {
		return nil, err
	}
	typ, ok := xdm.TypeByName(typeName)
	if !ok {
		return nil, fmt.Errorf("qdl: unknown property type %q", typeName)
	}
	d := &PropertyDecl{Name: name, Type: typ, TypeName: typeName}
	for p.Peek().Kind == xpath.TokName {
		done := false
		switch p.Peek().Text {
		case "inherited":
			p.Advance()
			d.Inherited = true
		case "fixed":
			p.Advance()
			d.Fixed = true
		default:
			done = true
		}
		if done {
			break
		}
	}
	for p.Peek().Kind == xpath.TokName && p.Peek().Text == "queue" {
		p.Advance()
		var queues []string
		for {
			qn, err := p.QName()
			if err != nil {
				return nil, err
			}
			queues = append(queues, qn)
			if p.Peek().Kind != xpath.TokComma {
				break
			}
			p.Advance()
		}
		if err := p.ExpectName("value"); err != nil {
			return nil, err
		}
		expr, err := p.ParseExprSingle()
		if err != nil {
			return nil, err
		}
		d.Bindings = append(d.Bindings, PropBinding{Queues: queues, Value: normalizeBooleanName(expr)})
	}
	if len(d.Bindings) == 0 {
		return nil, fmt.Errorf("qdl: property %q needs at least one 'queue ... value ...' binding", name)
	}
	return d, nil
}

// normalizeBooleanName turns the bare names "true" and "false" — which the
// paper uses as property default values ("value false") but which XPath
// would read as child element tests — into boolean literals.
func normalizeBooleanName(e xpath.Expr) xpath.Expr {
	pe, ok := e.(*xpath.PathExpr)
	if !ok || pe.Rooted || pe.Start != nil || len(pe.Steps) != 1 {
		return e
	}
	st := pe.Steps[0]
	if st.Axis != xpath.AxisChild || st.Test.Kind != xpath.TestName || len(st.Preds) != 0 {
		return e
	}
	switch st.Test.Name.Local {
	case "true":
		return xpath.NewLiteral(xdm.NewBool(true))
	case "false":
		return xpath.NewLiteral(xdm.NewBool(false))
	}
	return e
}

func parseSlicing(p *xpath.Parser) (*SlicingDecl, error) {
	name, err := p.QName()
	if err != nil {
		return nil, err
	}
	if err := p.ExpectName("on"); err != nil {
		return nil, err
	}
	prop, err := p.QName()
	if err != nil {
		return nil, err
	}
	return &SlicingDecl{Name: name, Property: prop}, nil
}

func parseRule(p *xpath.Parser) (*RuleDecl, error) {
	name, err := p.QName()
	if err != nil {
		return nil, err
	}
	if err := p.ExpectName("for"); err != nil {
		return nil, err
	}
	target, err := p.QName()
	if err != nil {
		return nil, err
	}
	r := &RuleDecl{Name: name, Target: target}
	if p.Peek().Kind == xpath.TokName && p.Peek().Text == "errorqueue" {
		p.Advance()
		e, err := p.QName()
		if err != nil {
			return nil, err
		}
		r.ErrorQueue = e
	}
	body, err := p.ParseExprSingle()
	if err != nil {
		return nil, err
	}
	r.Body = body
	return r, nil
}
