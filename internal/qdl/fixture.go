package qdl

// ProcurementApp is a complete transcription of the paper's running
// example: the distributed procurement scenario of Fig. 3/4 with the QML
// rules of Figs. 5-10 (Examples 3.1-3.5). Parts the paper elides ("...")
// are filled in; the supplier's remote capacity check is implemented as a
// local rule so the application is self-contained (the gateway examples
// exercise the remote variant). Two adaptations, documented in DESIGN.md:
// child steps after qs:message()/qs:slice() are written as descendant
// steps because those functions return document nodes (Sec. 3.4 text), and
// statements carry ';' terminators.
const ProcurementApp = `
(: ---- queues (Fig. 4) ---- :)
create queue crm       kind basic mode persistent;
create queue finance   kind basic mode persistent;
create queue legal     kind basic mode persistent;
create queue supplier  kind basic mode persistent;
create queue customer  kind basic mode persistent;
create queue invoices  kind basic mode persistent;
create queue echoQueue kind echo  mode persistent;
create queue crmErrors kind basic mode persistent;
create queue postalService kind basic mode persistent;

create collection crm;

(: ---- correlation property and slicing (Example 3.3) ---- :)
create property requestID as xs:string fixed
  queue crm, customer value //requestID;
create slicing requestMsgs on requestID;

(: ---- Example 3.1 (Fig. 5): fork the three checks ---- :)
create rule newOfferRequest for crm
  if (//offerRequest) then
    let $customerInfo :=
      <requestCustomerInfo>{//requestID} {//customerID}</requestCustomerInfo>
    let $exportRestrictionsInfo :=
      <exportRestrictionsInfo>{//requestID} {//items}</exportRestrictionsInfo>
    let $plantCapacityInfo :=
      <plantCapacityInfo>{//requestID} {//items}</plantCapacityInfo>
    return (do enqueue $customerInfo into finance,
            do enqueue $exportRestrictionsInfo into legal,
            do enqueue $plantCapacityInfo into supplier
              with Sender value "http://ws.chem.invalid/");

(: ---- Example 3.2 (Fig. 6): credit rating against open invoices ---- :)
create rule checkCreditRating for finance
  if (//requestCustomerInfo) then
    let $result :=
      <customerInfoResult>{//requestID} {//customerID}
        {let $invoices := qs:queue("invoices")
         return
           if ($invoices[//customerID = qs:message()//customerID])
           then <refuse/>
           else <accept/>}
      </customerInfoResult>
    return do enqueue $result into crm;

(: ---- legal check (elided in the paper) ---- :)
create rule checkExportRestrictions for legal
  if (//exportRestrictionsInfo) then
    let $result :=
      <restrictionsResult>{//requestID}
        {for $i in //items//item where $i/@restricted = "yes"
         return <restrictedItem>{string($i/@sku)}</restrictedItem>}
      </restrictionsResult>
    return do enqueue $result into crm;

(: ---- supplier capacity check (remote in the paper, local here) ---- :)
create rule checkPlantCapacity for supplier
  if (//plantCapacityInfo) then
    let $total := sum(//items//item/qty)
    let $result :=
      <capacityResult>{//requestID}
        {if ($total < 1000) then <accept/> else <exceeded/>}
      </capacityResult>
    return do enqueue $result into crm;

(: ---- Example 3.3 (Fig. 7): join the parallel checks ----
   One guard beyond the paper's listing: the offer/refusal itself enters
   the requestMsgs slice (the customer queue carries the requestID
   property), which would re-trigger this rule once before cleanupRequest's
   reset becomes visible. The not(...) conjunct makes the join fire exactly
   once. :)
create rule joinOrder for requestMsgs
  if (qs:slice()[/customerInfoResult] and
      qs:slice()[/restrictionsResult] and
      qs:slice()[/capacityResult] and
      not(qs:slice()[/offer] or qs:slice()[/refusal])) then
    if (qs:slice()[/customerInfoResult//accept] and
        not(qs:slice()[/restrictionsResult//restrictedItem])
        and qs:slice()[/capacityResult//accept]) then
      let $request := qs:queue("crm")/offerRequest
      let $items := $request[.//requestID = qs:slicekey()]/items
      let $pricelist := collection("crm")[/pricelist]
      let $offer := <offer><requestID>{qs:slicekey()}</requestID>
                      {$items}
                      {$pricelist//discount}
                    </offer>
      return do enqueue $offer into customer
    else
      do enqueue <refusal><requestID>{qs:slicekey()}</requestID></refusal>
        into customer;

(: ---- Fig. 8: slice reset once the request completed ---- :)
create rule cleanupRequest for requestMsgs
  if (qs:slice()[/offer] or qs:slice()[/refusal]) then do reset;

(: ---- Fig. 9: invoice retention and payment reminders ---- :)
create property messageRequestID as xs:string fixed
  queue invoices, finance value //requestID;
create slicing invoiceRetention on messageRequestID;

create rule resetPayedInvoices for invoiceRetention
  if (qs:slice()[//timeoutNotification]
      and qs:slice()[/paymentConfirmation]) then
    do reset;

create rule checkPayment for finance
  if (//timeoutNotification) then
    let $mRID := string(qs:message()//requestID)
    let $payments := qs:queue()[/paymentConfirmation]
    return
      if (not($payments[//requestID = $mRID])) then
        let $invoice := qs:queue("invoices")[//requestID = $mRID]
        let $reminder := <reminder>{$invoice//requestID}
                           <overdue>{$invoice//amount}</overdue>
                         </reminder>
        return do enqueue $reminder into customer
      else ();

(: ---- Example 3.5 (Fig. 10): error handling ---- :)
create property orderID as xs:integer
  queue crm value //customerOrder/orderID;
create slicing retainOrders on orderID;

create rule confirmOrder for crm errorqueue crmErrors
  if (//customerOrder) then
    let $confirmation := <confirmation>{//orderID}</confirmation>
    return do enqueue $confirmation into customer;

create rule deadLink for crmErrors
  if (/error//disconnectedTransport) then
    let $orders := qs:queue("crm")//customerOrder
    let $initialOrderID := /error//initialMessage//orderID
    let $address := $orders[orderID = $initialOrderID]/address
    let $request := <sendMessage>{$address}{/error//initialMessage}</sendMessage>
    return do enqueue $request into postalService;
`
