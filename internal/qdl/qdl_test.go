package qdl

import (
	"testing"

	"demaq/internal/xdm"
	"demaq/internal/xpath"
)

func TestParseQueueDecls(t *testing.T) {
	app := MustParse(`
		create queue finance kind basic mode persistent;
		create queue scratch kind basic mode transient priority 5;
		create queue echoQueue kind echo mode persistent;
	`)
	if len(app.Queues) != 3 {
		t.Fatalf("queues: %d", len(app.Queues))
	}
	q := app.Queues[0]
	if q.Name != "finance" || q.Kind != KindBasic || !q.Persistent {
		t.Fatalf("finance: %+v", q)
	}
	if app.Queues[1].Persistent || app.Queues[1].Priority != 5 {
		t.Fatalf("scratch: %+v", app.Queues[1])
	}
	if app.Queues[2].Kind != KindEcho {
		t.Fatalf("echo: %+v", app.Queues[2])
	}
}

func TestParseGatewayDecl(t *testing.T) {
	// Paper Sec. 2.1.2 verbatim (plus terminator).
	app := MustParse(`
		create queue supplier kind outgoingGateway mode persistent
		  interface supplier.wsdl port CapacityRequestPort
		  using WS-ReliableMessaging policy wsrmpol.xml
		  using WS-Security policy wssecpol.xml;
	`)
	q := app.Queues[0]
	if q.Kind != KindOutgoingGateway || q.Interface != "supplier.wsdl" || q.Port != "CapacityRequestPort" {
		t.Fatalf("gateway: %+v", q)
	}
	if len(q.Policies) != 2 || q.Policies[0].Name != "WS-ReliableMessaging" || q.Policies[1].File != "wssecpol.xml" {
		t.Fatalf("policies: %+v", q.Policies)
	}
}

func TestReliableMessagingRequiresPersistence(t *testing.T) {
	// Paper Sec. 2.1.2: "in order to use the reliable messaging extensions
	// ... the created queue must be persistent".
	_, err := Parse(`create queue s kind outgoingGateway mode transient
		using WS-ReliableMessaging policy p.xml;`)
	if err == nil {
		t.Fatal("transient reliable gateway must be rejected")
	}
}

func TestParsePropertyDecls(t *testing.T) {
	// Both Sec. 2.2 examples.
	app := MustParse(`
		create property isVIPorder as xs:boolean inherited
		  queue crm, finance, legal, customer value false;
		create property orderID as xs:string fixed
		  queue order value //orderID
		  queue confirmation value /confirmedOrder/ID;
	`)
	if len(app.Properties) != 2 {
		t.Fatalf("properties: %d", len(app.Properties))
	}
	vip := app.Properties[0]
	if !vip.Inherited || vip.Fixed || vip.Type != xdm.TypeBoolean {
		t.Fatalf("vip flags: %+v", vip)
	}
	if len(vip.Bindings) != 1 || len(vip.Bindings[0].Queues) != 4 {
		t.Fatalf("vip bindings: %+v", vip.Bindings)
	}
	// "value false" is a boolean literal, not a path.
	if lit, ok := vip.Bindings[0].Value.(*xpath.Literal); !ok || lit.Value.B {
		t.Fatalf("vip default: %#v", vip.Bindings[0].Value)
	}
	oid := app.Properties[1]
	if !oid.Fixed || oid.Inherited || len(oid.Bindings) != 2 {
		t.Fatalf("orderID: %+v", oid)
	}
	if _, ok := oid.Bindings[0].Value.(*xpath.PathExpr); !ok {
		t.Fatal("orderID value should be a path")
	}
}

func TestParseSlicingAndRule(t *testing.T) {
	app := MustParse(`
		create slicing orders on orderID;
		create rule cleanupRequest for requestMsgs
		  if (qs:slice()/offer or qs:slice()/refusal) then do reset;
		create rule confirmOrder for crm errorqueue crmErrors
		  if (//customerOrder) then
		    do enqueue <confirmation>{//orderID}</confirmation> into customer;
	`)
	if len(app.Slicings) != 1 || app.Slicings[0].Property != "orderID" {
		t.Fatalf("slicing: %+v", app.Slicings)
	}
	if len(app.Rules) != 2 {
		t.Fatalf("rules: %d", len(app.Rules))
	}
	r := app.Rules[0]
	if r.Name != "cleanupRequest" || r.Target != "requestMsgs" || r.ErrorQueue != "" {
		t.Fatalf("rule 1: %+v", r)
	}
	if app.Rules[1].ErrorQueue != "crmErrors" {
		t.Fatalf("rule 2 errorqueue: %+v", app.Rules[1])
	}
	if _, ok := app.Rules[1].Body.(*xpath.IfExpr); !ok {
		t.Fatal("rule body should be a conditional")
	}
}

func TestParseCollections(t *testing.T) {
	app := MustParse(`create collection crm;`)
	if len(app.Collections) != 1 || app.Collections[0].Name != "crm" {
		t.Fatalf("collections: %+v", app.Collections)
	}
}

func TestParseComments(t *testing.T) {
	app := MustParse(`
		(: the finance queue :)
		create queue finance kind basic mode persistent; (: trailing :)
	`)
	if len(app.Queues) != 1 {
		t.Fatal("comments")
	}
}

func TestParseErrorsQDL(t *testing.T) {
	bad := []string{
		`create widget x;`,
		`create queue q;`, // missing kind/mode
		`create queue q kind basic;`,
		`create queue q kind wrong mode persistent;`,
		`create queue q kind basic mode sometimes;`,
		`create property p as xs:string;`, // no bindings
		`create property p as no:such queue q value 1;`,
		`create slicing s;`,
		`create rule r for q`, // missing body
		`create queue a kind basic mode persistent create queue b kind basic mode persistent;`, // missing ';'
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// TestParsePaperApplication parses a full transcription of the paper's
// procurement scenario statements (Figs. 5-10 with the elided parts filled
// in), which is also the application the procurement example runs.
func TestParsePaperApplication(t *testing.T) {
	app, err := Parse(ProcurementApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Queues) < 8 || len(app.Rules) < 6 || len(app.Slicings) < 2 {
		t.Fatalf("procurement app shape: %d queues, %d rules, %d slicings",
			len(app.Queues), len(app.Rules), len(app.Slicings))
	}
}
