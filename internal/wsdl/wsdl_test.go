package wsdl

import "testing"

const supplierWSDL = `
<definitions>
  <service name="Supplier">
    <port name="CapacityRequestPort" element="plantCapacityInfo">
      <address location="sim://supplier/capacity"/>
    </port>
    <port name="OrderPort">
      <address location="http://supplier.invalid/orders"/>
    </port>
  </service>
</definitions>`

func TestParseWSDL(t *testing.T) {
	def, err := Parse([]byte(supplierWSDL))
	if err != nil {
		t.Fatal(err)
	}
	if def.Service != "Supplier" || len(def.Ports) != 2 {
		t.Fatalf("definition: %+v", def)
	}
	p, err := def.Port("CapacityRequestPort")
	if err != nil || p.Address != "sim://supplier/capacity" || p.Element != "plantCapacityInfo" {
		t.Fatalf("port: %+v %v", p, err)
	}
	if _, err := def.Port("NoSuchPort"); err == nil {
		t.Fatal("unknown port must fail")
	}
	// Empty port name is ambiguous with two ports.
	if _, err := def.Port(""); err == nil {
		t.Fatal("ambiguous default port must fail")
	}
}

func TestSinglePortDefault(t *testing.T) {
	def, err := Parse([]byte(`<definitions><service name="S">
		<port name="Only"><address location="sim://x/y"/></port>
	</service></definitions>`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := def.Port("")
	if err != nil || p.Name != "Only" {
		t.Fatalf("default port: %+v %v", p, err)
	}
}

func TestParseWSDLErrors(t *testing.T) {
	bad := []string{
		`<nope/>`,
		`<definitions/>`,
		`<definitions><service><port name="p"/></service></definitions>`,                           // no address
		`<definitions><service><port><address location="sim://x"/></port></service></definitions>`, // no name
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("expected error for %s", src)
		}
	}
}
