// Package wsdl parses the WSDL subset Demaq gateway declarations consume
// (paper Sec. 2.1.2: "we import the supplier's interface definition from a
// WSDL file"): service/port names with their endpoint addresses and,
// optionally, the expected payload element per port for outbound
// validation.
package wsdl

import (
	"fmt"

	"demaq/internal/xmldom"
)

// Definition is a parsed interface definition.
type Definition struct {
	Service string
	Ports   map[string]*Port
}

// Port is one endpoint of the service.
type Port struct {
	Name    string
	Address string // endpoint address (sim:// or http://)
	Element string // expected root element of payloads ("" = any)
}

// Parse reads a WSDL-subset document:
//
//	<definitions>
//	  <service name="Supplier">
//	    <port name="CapacityRequestPort" element="plantCapacityInfo">
//	      <address location="sim://supplier/capacity"/>
//	    </port>
//	  </service>
//	</definitions>
func Parse(src []byte) (*Definition, error) {
	doc, err := xmldom.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	root := doc.Root()
	if root == nil || root.Name.Local != "definitions" {
		return nil, fmt.Errorf("wsdl: document element must be <definitions>")
	}
	def := &Definition{Ports: map[string]*Port{}}
	for _, svc := range root.ChildElements() {
		if svc.Name.Local != "service" {
			continue
		}
		if n, ok := svc.Attr("name"); ok {
			def.Service = n
		}
		for _, p := range svc.ChildElements() {
			if p.Name.Local != "port" {
				continue
			}
			name, ok := p.Attr("name")
			if !ok {
				return nil, fmt.Errorf("wsdl: port without name")
			}
			port := &Port{Name: name}
			port.Element, _ = p.Attr("element")
			for _, a := range p.ChildElements() {
				if a.Name.Local == "address" {
					port.Address, _ = a.Attr("location")
				}
			}
			if port.Address == "" {
				return nil, fmt.Errorf("wsdl: port %q has no address", name)
			}
			def.Ports[name] = port
		}
	}
	if len(def.Ports) == 0 {
		return nil, fmt.Errorf("wsdl: no ports defined")
	}
	return def, nil
}

// Port resolves a port by name; an empty name with exactly one port returns
// that port.
func (d *Definition) Port(name string) (*Port, error) {
	if name == "" {
		if len(d.Ports) == 1 {
			for _, p := range d.Ports {
				return p, nil
			}
		}
		return nil, fmt.Errorf("wsdl: port name required (service has %d ports)", len(d.Ports))
	}
	p, ok := d.Ports[name]
	if !ok {
		return nil, fmt.Errorf("wsdl: unknown port %q", name)
	}
	return p, nil
}
