// Command demaqctl is the client-side companion of demaqd.
//
//	demaqctl validate application.dq
//	demaqctl send http://host:port/queues/in message.xml [key=value ...]
//	demaqctl send http://host:port/queues/in - < message.xml
//	demaqctl status http://host:7070
//
// "send" POSTs an XML message to an HTTP incoming-gateway endpoint of a
// running server; key=value pairs become explicit message properties
// (X-Demaq-* headers). "status" reads the JSON endpoint served by
// demaqd -status and prints the engine counters, including the
// set-oriented execution stats (batches claimed, average batch size,
// deadlock requeues).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"demaq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "validate":
		if len(os.Args) != 3 {
			usage()
		}
		src, err := os.ReadFile(os.Args[2])
		if err != nil {
			fatal(err)
		}
		if err := demaq.Validate(string(src)); err != nil {
			fatal(fmt.Errorf("%s: %w", os.Args[2], err))
		}
		fmt.Printf("%s: OK\n", os.Args[2])
	case "send":
		if len(os.Args) < 4 {
			usage()
		}
		url, file := os.Args[2], os.Args[3]
		var body []byte
		var err error
		if file == "-" {
			body, err = io.ReadAll(os.Stdin)
		} else {
			body, err = os.ReadFile(file)
		}
		if err != nil {
			fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(body)))
		if err != nil {
			fatal(err)
		}
		req.Header.Set("Content-Type", "application/xml")
		for _, kv := range os.Args[4:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				fatal(fmt.Errorf("property argument %q is not key=value", kv))
			}
			req.Header.Set("X-Demaq-"+k, v)
		}
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Do(req)
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			fatal(fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(out))))
		}
		fmt.Printf("accepted (%s)\n", resp.Status)
	case "status":
		if len(os.Args) != 3 {
			usage()
		}
		url := strings.TrimSuffix(os.Args[2], "/")
		if !strings.HasSuffix(url, "/status") {
			url += "/status"
		}
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(url)
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			fatal(fmt.Errorf("server returned %s", resp.Status))
		}
		var st demaq.Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			fatal(err)
		}
		fmt.Printf("processed          %d\n", st.Processed)
		fmt.Printf("rules evaluated    %d\n", st.RulesEvaluated)
		fmt.Printf("rules fired        %d\n", st.RulesFired)
		fmt.Printf("enqueued           %d\n", st.Enqueued)
		fmt.Printf("resets             %d\n", st.Resets)
		fmt.Printf("errors             %d\n", st.Errors)
		fmt.Printf("deadlocks          %d\n", st.Deadlocks)
		fmt.Printf("deadlock requeues  %d\n", st.DeadlockRequeues)
		fmt.Printf("collected          %d\n", st.Collected)
		fmt.Printf("backlog            %d\n", st.Backlog)
		fmt.Printf("batches claimed    %d\n", st.BatchesClaimed)
		fmt.Printf("avg batch size     %.2f\n", st.AvgBatchSize)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  demaqctl validate <application.dq>
  demaqctl send <endpoint-url> <message.xml|-> [prop=value ...]
  demaqctl status <status-url>`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "demaqctl:", err)
	os.Exit(1)
}
