// Command demaq-bench regenerates the experiment tables recorded in
// EXPERIMENTS.md: every performance claim of the paper (Sections 2-4) as a
// parameter sweep, printed as a table. See DESIGN.md §6 for the experiment
// index.
//
//	demaq-bench            # run everything
//	demaq-bench -e E1,E3   # selected experiments
//	demaq-bench -e E14 -json   # also write BENCH_E14.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"testing/fstest"
	"time"

	"demaq"
	"demaq/internal/baseline"
	"demaq/internal/engine"
	"demaq/internal/gateway"
	"demaq/internal/msgstore"
	"demaq/internal/property"
	"demaq/internal/qdl"
	"demaq/internal/rule"
	"demaq/internal/slicing"
	"demaq/internal/store"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

var experiments = []struct {
	id   string
	desc string
	run  func()
}{
	{"E1", "materialized slices vs merged slice queries (Sec. 4.3)", runE1},
	{"E2", "slice- vs queue-granularity locking (Sec. 4.3)", runE2},
	{"E3", "append-only logging & unlogged retention deletes (Sec. 4.1)", runE3},
	{"E4", "rule compiler condition dispatch (Sec. 4.4.1)", runE4},
	{"E5", "priority scheduling (Sec. 3.1/4.4.2)", runE5},
	{"E6", "state-as-messages vs dehydration store (Sec. 2.1)", runE6},
	{"E7", "pipeline throughput by payload size (Sec. 1/3)", runE7},
	{"E8", "retention garbage collection (Sec. 2.3.3)", runE8},
	{"E9", "reliable messaging under loss (Sec. 4.2)", runE9},
	{"A2", "buffer pool size ablation", runA2},
	{"A3", "commit durability policy ablation", runA3},
	{"E10", "concurrent commit throughput & fsync coalescing", runE10},
	{"E11", "compiled rule programs vs AST interpreter (Sec. 4.4.1)", runE11},
	{"E12", "binary vs text payload rehydration (Sec. 4.1)", runE12},
	{"E13", "set-oriented batch execution (Sec. 3.1/4.4)", runE13},
	{"E14", "fine-grained page-store concurrency (per-page latches)", runE14},
	{"E16", "streaming ingest with per-queue path projection", runE16},
	{"E17", "index-backed dispatch & merged slice access vs scans", runE17},
	{"E18", "durable reliable-session state in the enqueue transaction (Sec. 4.2)", runE18},
	{"E19", "fuzzy incremental checkpoints: commit stalls & bounded recovery", runE19},
}

// jsonOut and the row collector implement -json: experiments append
// machine-readable rows via record(), and one BENCH_<id>.json file per
// recorded experiment is written at exit so the perf trajectory can be
// tracked in-repo.
var (
	jsonOut     bool
	benchRows   = map[string][]map[string]any{}
	benchRowIDs []string
)

func record(id string, row map[string]any) {
	if !jsonOut {
		return
	}
	if _, ok := benchRows[id]; !ok {
		benchRowIDs = append(benchRowIDs, id)
	}
	benchRows[id] = append(benchRows[id], row)
}

func writeJSONResults() {
	descs := map[string]string{}
	for _, ex := range experiments {
		descs[ex.id] = ex.desc
	}
	for _, id := range benchRowIDs {
		doc := map[string]any{
			"experiment":  id,
			"description": descs[id],
			"generated":   time.Now().UTC().Format(time.RFC3339),
			"rows":        benchRows[id],
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json encode %s: %v\n", id, err)
			continue
		}
		name := fmt.Sprintf("BENCH_%s.json", id)
		if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", name, err)
			continue
		}
		fmt.Printf("wrote %s\n", name)
	}
}

func main() {
	sel := flag.String("e", "all", "comma-separated experiment IDs (E1..E16,A2,A3) or 'all'")
	flag.BoolVar(&jsonOut, "json", false, "write BENCH_<id>.json files with machine-readable results")
	flag.Parse()
	want := map[string]bool{}
	if *sel != "all" {
		for _, id := range strings.Split(*sel, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	for _, ex := range experiments {
		if *sel != "all" && !want[ex.id] {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", ex.id, ex.desc)
		ex.run()
	}
	if jsonOut {
		writeJSONResults()
	}
}

func tempDir() string {
	dir, err := os.MkdirTemp("", "demaq-bench")
	if err != nil {
		panic(err)
	}
	return dir
}

func cleanup(dir string) { os.RemoveAll(dir) }

// --- E1 ---

func runE1() {
	fmt.Printf("%-10s %-14s %-14s %10s\n", "messages", "materialized", "merged", "speedup")
	for _, n := range []int{1000, 10000, 50000} {
		var times [2]time.Duration
		for mi, mat := range []bool{true, false} {
			dir := tempDir()
			// noIndex keeps the merged baseline a pure queue scan: with the
			// store's property index the merged path would itself be an index
			// probe (that contrast is experiment E17), erasing E1's ablation.
			sm, ms := buildSliceState(dir, n, n/10, mat, true)
			const probes = 200
			start := time.Now()
			for i := 0; i < probes; i++ {
				sm.SliceMembers("byK", fmt.Sprintf("s%d", i%(n/10)))
			}
			times[mi] = time.Since(start) / probes
			ms.Close()
			cleanup(dir)
		}
		fmt.Printf("%-10d %-14s %-14s %9.1fx\n", n, times[0], times[1],
			float64(times[1])/float64(times[0]))
	}
}

func buildSliceState(dir string, nMsgs, nSlices int, materialized, noIndex bool) (*slicing.Manager, *msgstore.Store) {
	opts := msgstore.DefaultOptions()
	opts.Store.SyncCommits = false
	opts.NoPropertyIndex = noIndex
	ms, err := msgstore.Open(dir, opts)
	if err != nil {
		panic(err)
	}
	props := property.NewManager()
	props.Define(&property.Def{
		Name: "k", Type: xdm.TypeString, Fixed: true,
		PerQueue: map[string]*xquery.Compiled{
			"q": xquery.MustCompile(`//k`, xquery.CompileOptions{}),
		},
	})
	sm := slicing.NewManager(ms, props, materialized)
	sm.Define("byK", "k")
	ms.CreateQueue("q", msgstore.Persistent, 0)
	type rec struct {
		id msgstore.MsgID
		pv map[string]xdm.Value
	}
	var recs []rec
	tx := ms.Begin()
	for i := 0; i < nMsgs; i++ {
		key := fmt.Sprintf("s%d", i%nSlices)
		doc := xmldom.MustParse(fmt.Sprintf(`<m><k>%s</k></m>`, key))
		pv := map[string]xdm.Value{"k": xdm.NewString(key)}
		id, err := tx.Enqueue("q", doc, pv, time.Now())
		if err != nil {
			panic(err)
		}
		recs = append(recs, rec{id, pv})
		// Chunked commits keep the E17-scale builds (10^6 messages) off one
		// giant transaction.
		if (i+1)%10000 == 0 {
			if _, err := tx.Commit(); err != nil {
				panic(err)
			}
			tx = ms.Begin()
		}
	}
	if _, err := tx.Commit(); err != nil {
		panic(err)
	}
	for _, r := range recs {
		sm.OnEnqueue(r.id, "q", r.pv)
	}
	return sm, ms
}

// --- E2 ---

func runE2() {
	// Rule evaluation must dominate for lock granularity to matter: the
	// slice rule performs a non-trivial XQuery computation per message
	// (realistic for validation/aggregation rules). Under queue-granularity
	// locking every message of the hot queue serializes on its X lock;
	// slice-granularity admits parallel evaluation of distinct slices.
	app := `
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
		create property k as xs:string fixed queue in value //k;
		create slicing byK on k;
		create rule check for byK
		  if (qs:slice()[/m]) then
		    do enqueue <audit>
		      <members>{count(qs:slice())}</members>
		      <checksum>{sum(for $i in 1 to 1500 return $i * 2)}</checksum>
		    </audit> into out;
	`
	const msgs = 600
	fmt.Printf("%-9s %-10s %12s %12s %10s\n", "workers", "locking", "elapsed", "msgs/sec", "speedup")
	for _, workers := range []int{1, 2, 4, 8} {
		var base float64
		for _, coarse := range []bool{true, false} {
			dir := tempDir()
			srv, err := demaq.Open(dir, app, &demaq.Options{
				Workers: workers, CoarseLocking: coarse, NoSync: true,
			})
			if err != nil {
				panic(err)
			}
			// Preload so the timed phase is pure processing.
			for i := 0; i < msgs; i++ {
				srv.Enqueue("in", fmt.Sprintf(`<m><k>k%d</k></m>`, i%64), nil)
			}
			start := time.Now()
			srv.Start()
			srv.Drain(5 * time.Minute)
			elapsed := time.Since(start)
			srv.Close()
			cleanup(dir)
			rate := float64(msgs) / elapsed.Seconds()
			name := "queue"
			if !coarse {
				name = "slice"
			}
			speedup := 1.0
			if coarse {
				base = rate
			} else if base > 0 {
				speedup = rate / base
			}
			fmt.Printf("%-9d %-10s %12s %12.0f %9.2fx\n", workers, name,
				elapsed.Round(time.Millisecond), rate, speedup)
		}
	}
}

// --- E3 ---

func runE3() {
	const msgs = 2000
	payload := []byte("<m>" + strings.Repeat("x", 900) + "</m>")
	fmt.Printf("%-18s %14s %14s\n", "delete mode", "log bytes/msg", "delete time")
	for _, unlogged := range []bool{true, false} {
		dir := tempDir()
		opts := store.DefaultOptions()
		opts.SyncCommits = false
		opts.UnloggedDeletes = unlogged
		s, err := store.Open(dir, opts)
		if err != nil {
			panic(err)
		}
		h, _ := s.CreateHeap("q")
		var rids []store.RID
		tx := s.Begin()
		for i := 0; i < msgs; i++ {
			rid, _ := tx.Insert(h, payload)
			rids = append(rids, rid)
		}
		tx.Commit()
		before := s.LogBytes()
		start := time.Now()
		s.BatchDelete(h, rids)
		elapsed := time.Since(start)
		perMsg := float64(s.LogBytes()-before) / msgs
		s.Close()
		cleanup(dir)
		mode := "unlogged (Demaq)"
		if !unlogged {
			mode = "before-images"
		}
		fmt.Printf("%-18s %14.1f %14s\n", mode, perMsg, elapsed.Round(time.Microsecond))
	}

	fmt.Printf("\n%-10s %14s\n", "messages", "recovery time")
	for _, n := range []int{1000, 10000, 50000} {
		dir := tempDir()
		opts := store.DefaultOptions()
		opts.SyncCommits = false
		s, _ := store.Open(dir, opts)
		h, _ := s.CreateHeap("q")
		tx := s.Begin()
		for j := 0; j < n; j++ {
			tx.Insert(h, []byte("<m>recovery payload for the crash test</m>"))
		}
		tx.Commit()
		s.CrashForTest()
		start := time.Now()
		s2, err := store.Open(dir, opts)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		s2.Close()
		cleanup(dir)
		fmt.Printf("%-10d %14s\n", n, elapsed.Round(time.Millisecond))
	}
}

// --- E4 ---

func runE4() {
	const msgs = 1500
	fmt.Printf("%-8s %-10s %12s %14s\n", "rules", "dispatch", "elapsed", "rules eval/msg")
	for _, nRules := range []int{4, 16, 64} {
		app := "create queue in kind basic mode persistent;\ncreate queue out kind basic mode persistent;\n"
		for i := 0; i < nRules; i++ {
			app += fmt.Sprintf(
				"create rule r%d for in if (//type%d) then do enqueue <hit/> into out;\n", i, i)
		}
		for _, optimized := range []bool{true, false} {
			dir := tempDir()
			srv, err := demaq.Open(dir, app, &demaq.Options{
				Workers: 2, NoSync: true, NoRuleOptimizations: !optimized,
			})
			if err != nil {
				panic(err)
			}
			start := time.Now()
			srv.Start()
			for i := 0; i < msgs; i++ {
				srv.Enqueue("in", fmt.Sprintf(`<type%d>x</type%d>`, i%nRules, i%nRules), nil)
			}
			srv.Drain(5 * time.Minute)
			elapsed := time.Since(start)
			st := srv.Stats()
			perMsg := float64(st.RulesEvaluated) / float64(st.Processed)
			srv.Close()
			cleanup(dir)
			fmt.Printf("%-8d %-10v %12s %14.1f\n", nRules, optimized,
				elapsed.Round(time.Millisecond), perMsg)
		}
	}
}

// --- E5 ---

func runE5() {
	app := `
		create queue low kind basic mode persistent priority 1;
		create queue high kind basic mode persistent priority 10;
		create queue sink kind basic mode persistent;
		create rule rl for low if (//m) then do enqueue <l/> into sink;
		create rule rh for high if (//m) then do enqueue <h/> into sink;
	`
	fmt.Printf("%-14s %18s\n", "backlog (low)", "high msg latency")
	for _, backlog := range []int{0, 1000, 5000} {
		dir := tempDir()
		srv, err := demaq.Open(dir, app, &demaq.Options{Workers: 2, NoSync: true})
		if err != nil {
			panic(err)
		}
		for i := 0; i < backlog; i++ {
			srv.Enqueue("low", `<m/>`, nil)
		}
		srv.Start()
		const probes = 20
		var total time.Duration
		for i := 0; i < probes; i++ {
			start := time.Now()
			srv.Enqueue("high", `<m/>`, nil)
			for {
				done := true
				msgs, _ := srv.Queue("high")
				for _, m := range msgs {
					if !m.Processed {
						done = false
					}
				}
				if done {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			total += time.Since(start)
		}
		srv.Drain(5 * time.Minute)
		srv.Close()
		cleanup(dir)
		fmt.Printf("%-14d %18s\n", backlog, (total / probes).Round(time.Microsecond))
	}
}

// --- E6 ---

func runE6() {
	const instances = 200
	fmt.Printf("%-22s %-18s %12s %12s\n", "engine", "events/instance", "elapsed", "events/sec")
	for _, eventsPer := range []int{10, 50, 200} {
		total := instances * eventsPer
		// Demaq: one append-only message per event, correlated by slicing.
		dir := tempDir()
		srv, err := demaq.Open(dir, `
			create queue events kind basic mode persistent;
			create property inst as xs:string fixed queue events value //inst;
			create slicing byInst on inst;
		`, &demaq.Options{Workers: 4, NoSync: true})
		if err != nil {
			panic(err)
		}
		srv.Start()
		start := time.Now()
		for i := 0; i < total; i++ {
			srv.Enqueue("events", fmt.Sprintf(`<event><inst>i%d</inst><data>payload</data></event>`, i%instances), nil)
		}
		srv.Drain(5 * time.Minute)
		dElapsed := time.Since(start)
		srv.Close()
		cleanup(dir)
		fmt.Printf("%-22s %-18d %12s %12.0f\n", "demaq (messages)", eventsPer,
			dElapsed.Round(time.Millisecond), float64(total)/dElapsed.Seconds())

		// Baseline: monolithic context per instance, rewritten per event.
		dir2 := tempDir()
		opts := store.DefaultOptions()
		opts.SyncCommits = false
		eng, err := baseline.Open(dir2, opts)
		if err != nil {
			panic(err)
		}
		ev := xmldom.MustParse(`<event><data>payload</data></event>`)
		start = time.Now()
		for i := 0; i < total; i++ {
			eng.HandleEvent(fmt.Sprintf("i%d", i%instances), ev)
		}
		bElapsed := time.Since(start)
		eng.Close()
		cleanup(dir2)
		fmt.Printf("%-22s %-18d %12s %12.0f\n", "dehydration store", eventsPer,
			bElapsed.Round(time.Millisecond), float64(total)/bElapsed.Seconds())
	}
}

// --- E7 ---

func runE7() {
	app := `
		create queue inbox kind basic mode persistent;
		create queue stage1 kind basic mode persistent;
		create queue stage2 kind basic mode persistent;
		create queue outbox kind basic mode persistent;
		create rule s0 for inbox if (//order) then do enqueue <checked>{//order/id}</checked> into stage1;
		create rule s1 for stage1 if (//checked) then do enqueue <priced>{//checked/id}</priced> into stage2;
		create rule s2 for stage2 if (//priced) then do enqueue <done>{//priced/id}</done> into outbox;
	`
	const msgs = 1000
	fmt.Printf("%-12s %12s %14s %12s\n", "payload", "elapsed", "msgs/sec", "MB/sec")
	for _, size := range []int{256, 4096, 65536} {
		dir := tempDir()
		srv, err := demaq.Open(dir, app, &demaq.Options{Workers: 4, NoSync: true})
		if err != nil {
			panic(err)
		}
		srv.Start()
		pad := strings.Repeat("p", size)
		start := time.Now()
		for i := 0; i < msgs; i++ {
			srv.Enqueue("inbox", fmt.Sprintf(`<order><id>%d</id><pad>%s</pad></order>`, i, pad), nil)
		}
		srv.Drain(10 * time.Minute)
		elapsed := time.Since(start)
		srv.Close()
		cleanup(dir)
		fmt.Printf("%-12s %12s %14.0f %12.1f\n", fmt.Sprintf("%dB", size),
			elapsed.Round(time.Millisecond), float64(msgs)/elapsed.Seconds(),
			float64(msgs*size)/1e6/elapsed.Seconds())
	}
}

// --- E8 ---

func runE8() {
	dir := tempDir()
	defer cleanup(dir)
	srv, err := demaq.Open(dir, `
		create queue in kind basic mode persistent;
		create property k as xs:string fixed queue in value //k;
		create slicing byK on k;
		create rule done for byK if (qs:slice()[/finish]) then do reset;
	`, &demaq.Options{Workers: 4, NoSync: true})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	srv.Start()
	fmt.Printf("%-10s %12s %12s %12s\n", "round", "produced", "collected", "gc time")
	for round := 0; round < 3; round++ {
		const groups = 50
		for j := 0; j < groups*10; j++ {
			srv.Enqueue("in", fmt.Sprintf(`<m><k>r%d-%d</k></m>`, round, j%groups), nil)
		}
		for j := 0; j < groups; j++ {
			srv.Enqueue("in", fmt.Sprintf(`<finish><k>r%d-%d</k></finish>`, round, j), nil)
		}
		srv.Drain(5 * time.Minute)
		start := time.Now()
		n, err := srv.CollectGarbage()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10d %12d %12d %12s\n", round, groups*11, n, time.Since(start).Round(time.Microsecond))
	}
}

// --- E9 ---

func runE9() {
	const msgs = 200
	fmt.Printf("%-10s %14s %16s %14s\n", "loss", "elapsed/msg", "retransmits/msg", "delivered")
	for _, loss := range []float64{0, 0.1, 0.3} {
		net := gateway.NewNetwork(99)
		net.SetLossRate(loss)
		recv, _ := gateway.NewReliable(net, "sim://b/in", 2*time.Millisecond, 400)
		var delivered int
		var mu sync.Mutex
		recv.Subscribe(func([]byte, map[string]string) error {
			mu.Lock()
			delivered++
			mu.Unlock()
			return nil
		})
		send, _ := gateway.NewReliable(net, "sim://a/out", 2*time.Millisecond, 400)
		send.Subscribe(func([]byte, map[string]string) error { return nil })
		payload := []byte("<m>reliable payload</m>")
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < msgs; i++ {
			wg.Add(1)
			send.SendAsync("sim://b/in", payload, nil, func(err error) {
				if err != nil {
					panic(err)
				}
				wg.Done()
			})
		}
		wg.Wait()
		elapsed := time.Since(start)
		_, retransmits, _ := send.Stats()
		send.Close()
		recv.Close()
		net.Close()
		mu.Lock()
		d := delivered
		mu.Unlock()
		fmt.Printf("%-10s %14s %16.2f %10d/%d\n", fmt.Sprintf("%.0f%%", loss*100),
			(elapsed / msgs).Round(time.Microsecond), float64(retransmits)/msgs, d, msgs)
	}
}

// --- A2 ---

func runA2() {
	fmt.Printf("%-14s %14s %14s\n", "pool pages", "scan time", "evictions")
	for _, pages := range []int{32, 512, 4096} {
		dir := tempDir()
		opts := store.DefaultOptions()
		opts.SyncCommits = false
		opts.BufferPages = pages
		s, _ := store.Open(dir, opts)
		h, _ := s.CreateHeap("q")
		payload := []byte(strings.Repeat("d", 2000))
		tx := s.Begin()
		for i := 0; i < 4000; i++ {
			tx.Insert(h, payload)
		}
		tx.Commit()
		start := time.Now()
		for r := 0; r < 5; r++ {
			s.Scan(h, func(store.RID, []byte) bool { return true })
		}
		elapsed := time.Since(start) / 5
		ev := s.Stats().Evictions
		s.Close()
		cleanup(dir)
		fmt.Printf("%-14d %14s %14d\n", pages, elapsed.Round(time.Microsecond), ev)
	}
}

// --- A3 ---

func runA3() {
	const msgs = 300
	fmt.Printf("%-12s %14s %14s\n", "fsync", "elapsed/msg", "msgs/sec")
	for _, sync := range []bool{true, false} {
		dir := tempDir()
		opts := store.DefaultOptions()
		opts.SyncCommits = sync
		s, _ := store.Open(dir, opts)
		h, _ := s.CreateHeap("q")
		payload := []byte("<m>committed message</m>")
		start := time.Now()
		for i := 0; i < msgs; i++ {
			tx := s.Begin()
			tx.Insert(h, payload)
			tx.Commit()
		}
		elapsed := time.Since(start)
		s.Close()
		cleanup(dir)
		mode := "on"
		if !sync {
			mode = "off"
		}
		fmt.Printf("%-12s %14s %14.0f\n", mode, (elapsed / msgs).Round(time.Microsecond),
			float64(msgs)/elapsed.Seconds())
	}
}

// runE13 sweeps the batch size of the set-oriented execution loop over the
// E7 pipeline workload with durable commits: the preloaded backlog is
// processed by 8 workers claiming, evaluating and committing BatchSize
// messages per transaction. fsyncs/msg shows the WAL-cohort amortization
// on top of PR 1's group commit.
func runE13() {
	app := `
		create queue inbox kind basic mode persistent;
		create queue stage1 kind basic mode persistent;
		create queue stage2 kind basic mode persistent;
		create queue outbox kind basic mode persistent;
		create rule s0 for inbox if (//order) then do enqueue <checked>{//order/id}</checked> into stage1;
		create rule s1 for stage1 if (//checked) then do enqueue <priced>{//checked/id}</priced> into stage2;
		create rule s2 for stage2 if (//priced) then do enqueue <done>{//priced/id}</done> into outbox;
	`
	const msgs = 2000
	pad := strings.Repeat("p", 1024)
	fmt.Printf("%-8s %12s %14s %14s %10s %10s\n", "batch", "elapsed", "msgs/sec", "fsyncs/msg", "avgbatch", "speedup")
	var base float64
	for _, batch := range []int{1, 8, 32, 128} {
		dir := tempDir()
		srv, err := demaq.Open(dir, app, &demaq.Options{Workers: 8, BatchSize: batch})
		if err != nil {
			panic(err)
		}
		// Preload (untimed) with concurrent enqueuers so ingest commits
		// coalesce; the timed phase is pure batch processing.
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < msgs/8; i++ {
					if _, err := srv.Enqueue("inbox",
						fmt.Sprintf(`<order><id>%d-%d</id><pad>%s</pad></order>`, w, i, pad), nil); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		before := srv.PageStats()
		st0 := srv.Stats()
		start := time.Now()
		srv.Start()
		if !srv.Drain(10 * time.Minute) {
			panic("drain")
		}
		elapsed := time.Since(start)
		after := srv.PageStats()
		st1 := srv.Stats()
		srv.Close()
		cleanup(dir)
		processed := st1.Processed - st0.Processed
		rate := float64(processed) / elapsed.Seconds()
		speedup := 1.0
		if batch == 1 {
			base = rate
		} else if base > 0 {
			speedup = rate / base
		}
		fsyncsPerMsg := float64(after.WALFsyncs-before.WALFsyncs) / float64(processed)
		fmt.Printf("%-8d %12s %14.0f %14.4f %10.2f %9.2fx\n", batch,
			elapsed.Round(time.Millisecond), rate,
			fsyncsPerMsg, st1.AvgBatchSize, speedup)
		record("E13", map[string]any{
			"batch": batch, "msgs_per_sec": rate, "fsyncs_per_msg": fsyncsPerMsg,
			"avg_batch": st1.AvgBatchSize, "speedup": speedup,
		})
	}
}

// runE12 sweeps cold-cache rehydration (Store.Doc on an evicted document)
// across payload sizes, comparing the binary tree encoding with the
// text-parse baseline (msgstore.Options.TextPayloads).
func runE12() {
	const nMsgs, reads = 32, 2000
	item := `<item sku="A-1001" qty="3"><name>article</name><price cur="EUR">19.90</price></item>`
	fmt.Printf("%-10s %-8s %14s %14s %12s\n", "payload", "format", "elapsed/doc", "docs/sec", "stored KB")
	for _, size := range []int{4 << 10, 64 << 10} {
		var sb strings.Builder
		sb.WriteString(`<order id="42">`)
		for sb.Len() < size {
			sb.WriteString(item)
		}
		sb.WriteString(`</order>`)
		doc := xmldom.MustParse(sb.String())
		for _, text := range []bool{false, true} {
			dir := tempDir()
			opts := msgstore.DefaultOptions()
			opts.TextPayloads = text
			opts.CacheDocs = 2
			ms, err := msgstore.Open(dir, opts)
			if err != nil {
				panic(err)
			}
			ms.CreateQueue("q", msgstore.Persistent, 0)
			ids := make([]msgstore.MsgID, nMsgs)
			for i := range ids {
				tx := ms.Begin()
				ids[i], _ = tx.Enqueue("q", doc, nil, time.Now())
				tx.Commit()
			}
			ms.FlushDocCache()
			start := time.Now()
			for i := 0; i < reads; i++ {
				if _, err := ms.Doc(ids[i%nMsgs]); err != nil {
					panic(err)
				}
			}
			elapsed := time.Since(start)
			st := ms.Stats()
			stored := st.PayloadEncodedBytes
			format := "binary"
			if text {
				stored = st.PayloadTextBytes
				format = "text"
			}
			ms.Close()
			cleanup(dir)
			fmt.Printf("%-10s %-8s %14s %14.0f %12.1f\n", fmt.Sprintf("%dKB", size>>10), format,
				(elapsed / reads).Round(time.Microsecond), float64(reads)/elapsed.Seconds(),
				float64(stored)/nMsgs/1024)
			record("E12", map[string]any{
				"payload_kb": size >> 10, "format": format,
				"docs_per_sec": float64(reads) / elapsed.Seconds(),
				"stored_kb":    float64(stored) / nMsgs / 1024,
			})
		}
	}
}

// --- E10 ---

// runE10 measures the three-phase commit pipeline: N workers commit
// independent one-message transactions with durable commits. Group commit
// coalesces their fsyncs, so fsyncs/commit drops below 1 as workers grow
// and throughput scales instead of serializing behind the WAL.
func runE10() {
	const msgs = 1200
	doc := xmldom.MustParse(`<order><id>42</id><total>99.50</total></order>`)
	fmt.Printf("%-9s %12s %14s %14s %10s\n", "workers", "elapsed", "commits/sec", "fsyncs/commit", "speedup")
	var base float64
	for _, workers := range []int{1, 4, 8} {
		dir := tempDir()
		ms, err := msgstore.Open(dir, msgstore.DefaultOptions())
		if err != nil {
			panic(err)
		}
		if _, err := ms.CreateQueue("q", msgstore.Persistent, 0); err != nil {
			panic(err)
		}
		before := ms.PageStore().Stats()
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < msgs/workers; i++ {
					tx := ms.Begin()
					if _, err := tx.Enqueue("q", doc, nil, time.Now()); err != nil {
						panic(err)
					}
					if _, err := tx.Commit(); err != nil {
						panic(err)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		after := ms.PageStore().Stats()
		ms.Close()
		cleanup(dir)
		commits := after.Commits - before.Commits
		fsyncsPer := float64(after.WALFsyncs-before.WALFsyncs) / float64(commits)
		rate := float64(commits) / elapsed.Seconds()
		speedup := 1.0
		if workers == 1 {
			base = rate
		} else if base > 0 {
			speedup = rate / base
		}
		fmt.Printf("%-9d %12s %14.0f %14.4f %9.2fx\n", workers,
			elapsed.Round(time.Millisecond), rate, fsyncsPer, speedup)
		record("E10", map[string]any{
			"workers": workers, "commits_per_sec": rate,
			"fsyncs_per_commit": fsyncsPer, "speedup": speedup,
		})
	}
}

// --- E11 ---

type evalRuntime struct{ doc *xmldom.Node }

func (r evalRuntime) Message() (*xmldom.Node, error)          { return r.doc, nil }
func (evalRuntime) Queue(string) ([]*xmldom.Node, error)      { return nil, nil }
func (evalRuntime) Property(string) (xdm.Value, error)        { return xdm.Value{}, fmt.Errorf("no props") }
func (evalRuntime) Slice() ([]*xmldom.Node, error)            { return nil, nil }
func (evalRuntime) SliceKey() (xdm.Value, error)              { return xdm.Value{}, nil }
func (evalRuntime) Collection(string) ([]*xmldom.Node, error) { return nil, nil }
func (evalRuntime) Now() time.Time                            { return time.Unix(0, 0).UTC() }

// runE11 measures pure rule-evaluation throughput on the E7 pipeline rules:
// the flat instruction backend (default) against the reference AST
// interpreter, store and scheduler out of the loop.
func runE11() {
	app, err := qdl.Parse(`
		create queue inbox kind basic mode persistent;
		create queue stage1 kind basic mode persistent;
		create queue stage2 kind basic mode persistent;
		create queue outbox kind basic mode persistent;
		create rule s0 for inbox if (//order) then do enqueue <checked>{//order/id}</checked> into stage1;
		create rule s1 for stage1 if (//checked) then do enqueue <priced>{//checked/id}</priced> into stage2;
		create rule s2 for stage2 if (//priced) then do enqueue <done>{//priced/id}</done> into outbox;
	`)
	if err != nil {
		panic(err)
	}
	pad := strings.Repeat("p", 4096)
	msgs := map[string]*xmldom.Node{
		"inbox":  xmldom.MustParse(fmt.Sprintf(`<order><id>7</id><pad>%s</pad></order>`, pad)),
		"stage1": xmldom.MustParse(fmt.Sprintf(`<checked><id>7</id><pad>%s</pad></checked>`, pad)),
		"stage2": xmldom.MustParse(fmt.Sprintf(`<priced><id>7</id><pad>%s</pad></priced>`, pad)),
	}
	queues := []string{"inbox", "stage1", "stage2"}
	const rounds = 2000
	fmt.Printf("%-14s %14s %14s %10s\n", "backend", "ns/3-rule eval", "rules/sec", "speedup")
	var base float64
	for _, compiled := range []bool{false, true} {
		name := "interpreted"
		opts := rule.Options{Dispatch: true, InlineFixedProps: true}
		if compiled {
			name = "compiled"
			opts = rule.DefaultOptions()
		}
		prog, err := rule.Compile(app, opts)
		if err != nil {
			panic(err)
		}
		evaluated := 0
		start := time.Now()
		for i := 0; i < rounds; i++ {
			for _, q := range queues {
				doc := msgs[q]
				plan := prog.QueuePlans[q]
				for _, r := range plan.RulesFor(rule.ElementNames(doc)) {
					if _, _, err := xquery.Eval(r.Body, evalRuntime{doc: doc}, xquery.EvalOptions{ContextDoc: doc}); err != nil {
						panic(err)
					}
					evaluated++
				}
			}
		}
		elapsed := time.Since(start)
		perEval := float64(elapsed.Nanoseconds()) / rounds
		rate := float64(evaluated) / elapsed.Seconds()
		speedup := 1.0
		if !compiled {
			base = rate
		} else if base > 0 {
			speedup = rate / base
		}
		fmt.Printf("%-14s %14.0f %14.0f %9.2fx\n", name, perEval, rate, speedup)
		record("E11", map[string]any{
			"backend": name, "ns_per_eval": perEval, "rules_per_sec": rate, "speedup": speedup,
		})
	}
}

// --- E14 ---

// runE14 sweeps parallel cold reads over the page store: N goroutines read
// disjoint record partitions through a buffer pool far smaller than the
// working set, so every read runs the full miss path. Device latency is
// modeled with store.Options.BenchIODelay (page-cache preads never block,
// which would measure memcpy speed instead of lock-vs-I/O overlap). The
// fine-grained latched engine is compared against the pre-E14 global store
// mutex (store.Options.GlobalLock).
func runE14() {
	const (
		records = 4000
		reads   = 1200
		ioDelay = 100 * time.Microsecond
	)
	payload := []byte(strings.Repeat("x", 1900)) // ~4 records per page

	build := func() (string, []store.RID) {
		dir := tempDir()
		opts := store.DefaultOptions()
		opts.SyncCommits = false
		s, err := store.Open(dir, opts)
		if err != nil {
			panic(err)
		}
		h, _ := s.CreateHeap("q")
		rids := make([]store.RID, 0, records)
		tx := s.Begin()
		for i := 0; i < records; i++ {
			rid, err := tx.Insert(h, payload)
			if err != nil {
				panic(err)
			}
			rids = append(rids, rid)
		}
		if err := tx.Commit(); err != nil {
			panic(err)
		}
		if err := s.Close(); err != nil {
			panic(err)
		}
		return dir, rids
	}

	fmt.Printf("%-12s %-12s %12s %14s %10s\n", "goroutines", "locking", "elapsed", "reads/sec", "speedup")
	for _, workers := range []int{1, 2, 4, 8, 16} {
		var base float64
		for _, global := range []bool{true, false} {
			dir, rids := build()
			opts := store.DefaultOptions()
			opts.SyncCommits = false
			opts.BufferPages = 64 // ~1000-page working set: reads stay cold
			opts.GlobalLock = global
			opts.BenchIODelay = ioDelay
			s, err := store.Open(dir, opts)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				chunk := rids[w*len(rids)/workers : (w+1)*len(rids)/workers]
				wg.Add(1)
				go func(w int, chunk []store.RID) {
					defer wg.Done()
					idx := w
					for i := 0; i < reads/workers; i++ {
						idx = (idx + 7) % len(chunk) // ~4 records/page: stride skips to a new page
						if _, err := s.Read(chunk[idx]); err != nil {
							panic(err)
						}
					}
				}(w, chunk)
			}
			wg.Wait()
			elapsed := time.Since(start)
			s.Close()
			cleanup(dir)
			rate := float64(reads) / elapsed.Seconds()
			name := "latched"
			if global {
				name = "global"
			}
			speedup := 1.0
			if global {
				base = rate
			} else if base > 0 {
				speedup = rate / base
			}
			fmt.Printf("%-12d %-12s %12s %14.0f %9.2fx\n", workers, name,
				elapsed.Round(time.Millisecond), rate, speedup)
			record("E14", map[string]any{
				"goroutines": workers, "locking": name,
				"reads_per_sec": rate, "speedup_vs_global": speedup,
			})
		}
	}
}

// --- E16 ---

// runE16 measures pure streaming-ingest throughput (wire XML in,
// committed message out; the engine is never started so no rules run),
// sweeping payload size and ingest mode: the legacy DOM path
// (parse-then-encode), the streaming encoder without projection, and the
// streaming encoder with the per-queue path projection pruning unread
// subtrees into opaque spans.
func runE16() {
	const projApp = `
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
		create rule route for in if (exists(/order/@id)) then
		  do enqueue <routed>{string(/order/@id)}</routed> into out;
	`
	const streamApp = `
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
		create rule route for in if (//order) then
		  do enqueue <routed>seen</routed> into out;
	`
	const item = `<item sku="A-1001" qty="3"><name>article</name><price cur="EUR">19.90</price><note>mixed <b>content</b> tail</note></item>`
	fmt.Printf("%-10s %-12s %14s %14s %12s\n", "payload", "mode", "elapsed/msg", "msgs/sec", "MB/sec")
	for _, size := range []int{4 << 10, 64 << 10} {
		var sb strings.Builder
		sb.WriteString(`<order id="42" state="open">`)
		for sb.Len() < size {
			sb.WriteString(item)
		}
		sb.WriteString(`</order>`)
		payload := []byte(sb.String())
		msgs := 2000
		if size > 16<<10 {
			msgs = 400
		}
		for _, mode := range []string{"legacy-dom", "streaming", "projected"} {
			src := projApp
			if mode == "streaming" {
				src = streamApp
			}
			app, err := qdl.Parse(src)
			if err != nil {
				panic(err)
			}
			dir := tempDir()
			cfg := engine.Config{Dir: dir, Workers: 1, FullIngest: mode == "legacy-dom"}
			cfg.Store = msgstore.DefaultOptions()
			cfg.Store.Store.SyncCommits = false
			e, err := engine.New(cfg, app)
			if err != nil {
				panic(err)
			}
			if (e.Projection("in") != nil) != (mode == "projected") {
				panic("projection mode mismatch: " + mode)
			}
			// Untimed warmup: page-store growth, doc-cache fill, JIT-warm
			// allocator paths.
			for i := 0; i < 50; i++ {
				if _, err := e.EnqueueWire("in", payload, nil); err != nil {
					panic(err)
				}
			}
			start := time.Now()
			for i := 0; i < msgs; i++ {
				if _, err := e.EnqueueWire("in", payload, nil); err != nil {
					panic(err)
				}
			}
			elapsed := time.Since(start)
			e.Stop()
			cleanup(dir)
			mbs := float64(len(payload)) * float64(msgs) / elapsed.Seconds() / (1 << 20)
			fmt.Printf("%-10s %-12s %14s %14.0f %12.1f\n", fmt.Sprintf("%dKB", size>>10), mode,
				(elapsed / time.Duration(msgs)).Round(time.Microsecond),
				float64(msgs)/elapsed.Seconds(), mbs)
			record("E16", map[string]any{
				"payload_kb": size >> 10, "mode": mode,
				"msgs_per_sec": float64(msgs) / elapsed.Seconds(),
				"mb_per_sec":   mbs,
			})
		}
	}
}

// --- E17 ---

// e17App routes a deep backlog by a property prefilter. The planner turns
// the qs:property predicate into an index probe, so index-backed dispatch
// resolves the ~99% non-matching messages with (property, value) range
// scans over each claimed batch and never fetches their documents. The
// ScanDispatch baseline fetches and decodes every claimed document before
// running the same prefilter. The // descents keep the queue unprojected:
// full documents are stored, so the baseline pays the real decode.
const e17App = `
	create queue inbox kind basic mode persistent;
	create queue hits kind basic mode persistent;
	create property route as xs:string queue inbox value //route;
	create rule hot for inbox
	  if (qs:property("route") = "hot") then do enqueue <hit>{//id/text()}</hit> into hits;
`

// e17Filler makes the documents structure-dense (~6KB, ~1200 nodes):
// eager dispatch pays decode cost (and the GC cost of the throwaway
// tree) per skipped message, and both scale with node count, not bytes.
var e17Filler = strings.Repeat(
	`<i a="7"><b>19.9</b><c>EA</c><d>2</d><e>ok</e></i>`, 120)

// e17DispatchRun preloads a backlog of n messages (untimed), then measures
// drain throughput. At the deepest backlog the run is rate-sampled under a
// time budget instead of drained to empty, which keeps the sweep bounded;
// the reported rate is Δprocessed/Δt either way.
func e17DispatchRun(n int, scan bool, budget time.Duration) (rate float64, drained bool) {
	dir := tempDir()
	defer cleanup(dir)
	// Batch 128: deep backlogs are the set-oriented scheduler's design
	// point, and a wide claim batch is also a wide id window for the
	// per-batch index probes. Both modes run the same configuration.
	srv, err := demaq.Open(dir, e17App, &demaq.Options{
		Workers: 8, BatchSize: 128, NoSync: true, ScanDispatch: scan,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				route := "cold"
				if i%100 == 0 {
					route = "hot"
				}
				doc := fmt.Sprintf(`<order><id>%d</id><route>%s</route>%s</order>`,
					i, route, e17Filler)
				if _, err := srv.Enqueue("inbox", doc, nil); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	st0 := srv.Stats()
	start := time.Now()
	srv.Start()
	deadline := start.Add(budget)
	for {
		st := srv.Stats()
		if st.Backlog == 0 {
			// Backlog drops at claim time; quiesce the in-flight batches
			// before trusting the queue contents.
			drained = srv.Drain(time.Minute)
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	elapsed := time.Since(start)
	processed := srv.Stats().Processed - st0.Processed
	if processed == 0 {
		panic("E17: nothing processed")
	}
	if drained {
		if hits, err := srv.Queue("hits"); err != nil || len(hits) != (n+99)/100 {
			panic(fmt.Sprintf("E17: %d hits, want %d", len(hits), (n+99)/100))
		}
	}
	return float64(processed) / elapsed.Seconds(), drained
}

// runE17 quantifies the secondary (property, value) → message index against
// the scan baselines it replaces, at backlogs of 10^4..10^6 messages:
// dispatch throughput (index probes vs eager fetch-then-filter) and merged
// slice access (one index range scan vs scanning every queue the slicing
// property is defined on).
func runE17() {
	fmt.Printf("dispatch: property-prefiltered routing over a deep backlog\n")
	fmt.Printf("%-10s %-10s %14s %10s %10s\n", "backlog", "mode", "msgs/sec", "drained", "speedup")
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		budget := 120 * time.Second
		if n >= 1_000_000 {
			budget = 30 * time.Second // rate-sample the deep backlog
		}
		var rates [2]float64
		var drains [2]bool
		for mi, scan := range []bool{false, true} {
			rates[mi], drains[mi] = e17DispatchRun(n, scan, budget)
		}
		speedup := rates[0] / rates[1]
		for mi, mode := range []string{"indexed", "scan"} {
			fmt.Printf("%-10d %-10s %14.0f %10v %9.1fx\n", n, mode, rates[mi], drains[mi], speedup)
			record("E17", map[string]any{
				"phase": "dispatch", "backlog": n, "mode": mode,
				"msgs_per_sec": rates[mi], "drained": drains[mi], "speedup_vs_scan": speedup,
			})
		}
	}

	fmt.Printf("\nmerged slice access: SliceMembers via property index vs queue scan\n")
	fmt.Printf("%-10s %-10s %14s %10s\n", "backlog", "mode", "per probe", "speedup")
	const nSlices = 1000
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		probes := 200
		if n >= 1_000_000 {
			probes = 50
		}
		var times [2]time.Duration
		for mi, noIndex := range []bool{false, true} {
			dir := tempDir()
			sm, ms := buildSliceState(dir, n, nSlices, false, noIndex)
			start := time.Now()
			for i := 0; i < probes; i++ {
				if got := len(sm.SliceMembers("byK", fmt.Sprintf("s%d", i%nSlices))); got != n/nSlices {
					panic(fmt.Sprintf("E17: slice size %d, want %d", got, n/nSlices))
				}
			}
			times[mi] = time.Since(start) / time.Duration(probes)
			ms.Close()
			cleanup(dir)
		}
		speedup := float64(times[1]) / float64(times[0])
		for mi, mode := range []string{"indexed", "scan"} {
			fmt.Printf("%-10d %-10s %14s %9.1fx\n", n, mode, times[mi], speedup)
			record("E17", map[string]any{
				"phase": "slice-join", "backlog": n, "mode": mode,
				"us_per_probe": float64(times[mi].Microseconds()), "speedup_vs_scan": speedup,
			})
		}
	}
}

// --- E18 ---

// e18App is the admission half of the reliable gateway pipeline: a WS-RM
// incoming queue with no rules, so the timed phase is pure transfer →
// dedup-check → enqueue-commit → ack. The durable-session mode folds the
// receive window snapshot into the same transaction as the enqueue (the
// exactly-once-across-crashes invariant); the baseline keeps the window in
// memory only.
const e18App = `
create queue in kind incomingGateway mode persistent
  interface node.wsdl port InPort
  using WS-ReliableMessaging policy rm.xml;
`

var e18Files = fstest.MapFS{
	"node.wsdl": &fstest.MapFile{Data: []byte(`
		<definitions><service name="Node">
		  <port name="InPort"><address location="sim://node/in"/></port>
		</service></definitions>`)},
	"rm.xml": &fstest.MapFile{Data: []byte(`<policy/>`)},
}

// runE18 measures the cost of durable reliable-session state: steady-state
// admission throughput and ack latency (client SendAsync → ack received)
// through the incoming gateway, with durable commits and a 16-transfer
// client window so group commit coalesces the fsyncs — the production
// configuration the overhead claim is about. Each mode reports its best of
// three trials: the trial minimum is the standard steady-state estimator
// when the noise (CPU scheduling, fsync jitter) is strictly additive.
func runE18() {
	const msgs = 5000
	const window = 16
	const trials = 3
	payload := []byte(fmt.Sprintf(`<job><n>1</n><pad>%s</pad></job>`, strings.Repeat("p", 256)))

	trial := func(durable bool) (rate float64, p50, p99 time.Duration) {
		dir := tempDir()
		defer cleanup(dir)
		app, err := qdl.Parse(e18App)
		if err != nil {
			panic(err)
		}
		net := gateway.NewNetwork(7)
		defer net.Close()
		cfg := engine.Config{
			Dir:               dir,
			Workers:           1,
			NoDurableSessions: !durable,
			Resources:         e18Files,
			Transports:        gateway.NewRegistry(net),
		}
		cfg.Store = msgstore.DefaultOptions() // durable commits: fsync per txn cohort
		e, err := engine.New(cfg, app)
		if err != nil {
			panic(err)
		}
		e.Start()
		client, err := gateway.NewReliable(net, "sim://client/acks", 20*time.Millisecond, 400)
		if err != nil {
			panic(err)
		}
		if err := client.Subscribe(func([]byte, map[string]string) error { return nil }); err != nil {
			panic(err)
		}
		send := func(n int, lat []time.Duration) {
			sem := make(chan struct{}, window)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				sem <- struct{}{}
				wg.Add(1)
				i := i
				t0 := time.Now()
				client.SendAsync("sim://node/in", payload, nil, func(err error) {
					if err != nil {
						panic(err)
					}
					if lat != nil {
						lat[i] = time.Since(t0)
					}
					<-sem
					wg.Done()
				})
			}
			wg.Wait()
		}
		send(200, nil) // untimed warmup: store growth, session heap creation
		lat := make([]time.Duration, msgs)
		start := time.Now()
		send(msgs, lat)
		elapsed := time.Since(start)
		client.Close()
		if err := e.Stop(); err != nil {
			panic(err)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return float64(msgs) / elapsed.Seconds(), lat[msgs/2], lat[msgs*99/100]
	}

	fmt.Printf("%-18s %14s %12s %12s %10s\n",
		"sessions", "msgs/sec", "p50 ack", "p99 ack", "overhead")
	var base float64
	for _, durable := range []bool{false, true} {
		var rate float64
		var p50, p99 time.Duration
		for i := 0; i < trials; i++ {
			r, l50, l99 := trial(durable)
			if r > rate {
				rate, p50, p99 = r, l50, l99
			}
		}
		mode := "in-memory"
		overhead := 0.0
		if durable {
			mode = "durable (Demaq)"
			if base > 0 {
				overhead = (base - rate) / base
			}
		} else {
			base = rate
		}
		fmt.Printf("%-18s %14.0f %12s %12s %9.1f%%\n", mode, rate,
			p50.Round(time.Microsecond), p99.Round(time.Microsecond), overhead*100)
		record("E18", map[string]any{
			"sessions": mode, "msgs_per_sec": rate,
			"p50_ack_us": float64(p50.Microseconds()), "p99_ack_us": float64(p99.Microseconds()),
			"overhead_vs_in_memory": overhead,
		})
	}
}

// --- E19 ---

// runE19 measures the two guarantees of fuzzy incremental checkpointing.
//
// Part 1 — commit availability: workers commit continuously while the
// checkpointer runs every few tens of milliseconds, in sharp mode (the
// pre-segmentation behavior: the store quiesces, every dirty page is
// written back under the exclusive fence) and in fuzzy mode (the fence
// shrinks to a begin record and a dirty-page snapshot; write-back overlaps
// commits). The commit p99 collapses from roughly a full checkpoint
// duration to near the uncontended latency.
//
// Part 2 — bounded recovery: a crash after a 1x and a 10x workload, both
// checkpointing whenever the live WAL exceeds a fixed budget, replays the
// same bounded tail — recovery time tracks the budget, not the uptime.
func runE19() {
	const (
		commitWindow = 800 * time.Millisecond
		ckptEvery    = 50 * time.Millisecond
		workers      = 4
	)
	doc := xmldom.MustParse(`<order><id>7</id><total>12.25</total></order>`)

	// Part 1: commit latency while a checkpoint is in progress. A handful
	// of workers commit continuously; checkpoints run every 50ms. The
	// population that matters is commits OVERLAPPING a checkpoint window —
	// a sharp checkpoint quiesces exactly those, a fuzzy one only fences
	// them for the begin-record append. Overall p50 is reported as the
	// no-checkpoint baseline.
	type sample struct {
		start time.Time
		d     time.Duration
	}
	type window struct{ a, b time.Time }
	part1 := func(sharp bool) (p50, ckptP99, ckptMax time.Duration, inCkpt, ckpts int) {
		dir := tempDir()
		defer cleanup(dir)
		opts := msgstore.DefaultOptions()
		opts.Store.SyncCommits = false // isolate fence stalls from fsync noise
		ms, err := msgstore.Open(dir, opts)
		if err != nil {
			panic(err)
		}
		defer ms.Close()
		if _, err := ms.CreateQueue("q", msgstore.Persistent, 0); err != nil {
			panic(err)
		}
		var mu sync.Mutex
		var lat []sample
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local []sample
				for {
					select {
					case <-stop:
						mu.Lock()
						lat = append(lat, local...)
						mu.Unlock()
						return
					default:
					}
					t0 := time.Now()
					tx := ms.Begin()
					if _, err := tx.Enqueue("q", doc, nil, time.Now()); err != nil {
						panic(err)
					}
					if _, err := tx.Commit(); err != nil {
						panic(err)
					}
					local = append(local, sample{t0, time.Since(t0)})
				}
			}()
		}
		var windows []window
		deadline := time.Now().Add(commitWindow)
		for time.Now().Before(deadline) {
			time.Sleep(ckptEvery)
			a := time.Now()
			var err error
			if sharp {
				err = ms.PageStore().SharpCheckpoint()
			} else {
				err = ms.PageStore().Checkpoint()
			}
			if err != nil {
				panic(err)
			}
			windows = append(windows, window{a, time.Now()})
			ckpts++
		}
		close(stop)
		wg.Wait()

		overlaps := func(s sample) bool {
			end := s.start.Add(s.d)
			for _, w := range windows {
				if s.start.Before(w.b) && end.After(w.a) {
					return true
				}
			}
			return false
		}
		var all, during []time.Duration
		for _, s := range lat {
			all = append(all, s.d)
			if overlaps(s) {
				during = append(during, s.d)
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		sort.Slice(during, func(i, j int) bool { return during[i] < during[j] })
		if len(during) == 0 {
			panic("E19: no commit overlapped a checkpoint window")
		}
		n := len(during)
		return all[len(all)/2], during[n*99/100], during[n-1], n, ckpts
	}

	fmt.Printf("%-8s %8s %10s %12s %14s %14s\n",
		"mode", "ckpts", "baseline", "in-ckpt", "in-ckpt p99", "in-ckpt max")
	for _, sharp := range []bool{true, false} {
		mode := "fuzzy"
		if sharp {
			mode = "sharp"
		}
		p50, ckptP99, ckptMax, inCkpt, ckpts := part1(sharp)
		fmt.Printf("%-8s %8d %10s %12d %14s %14s\n", mode, ckpts,
			p50.Round(time.Microsecond), inCkpt,
			ckptP99.Round(time.Microsecond), ckptMax.Round(time.Microsecond))
		record("E19", map[string]any{
			"part": "commit-latency", "mode": mode, "checkpoints": ckpts,
			"baseline_p50_us": float64(p50.Microseconds()),
			"in_ckpt_commits": inCkpt,
			"in_ckpt_p99_us":  float64(ckptP99.Microseconds()),
			"in_ckpt_max_us":  float64(ckptMax.Microseconds()),
		})
	}

	// Part 2: recovery work vs workload length under a fixed WAL budget.
	const budget = 64 << 10
	part2 := func(rounds int) (replayed uint64, dur time.Duration) {
		dir := tempDir()
		defer cleanup(dir)
		ms, err := msgstore.Open(dir, msgstore.DefaultOptions())
		if err != nil {
			panic(err)
		}
		if _, err := ms.CreateQueue("q", msgstore.Persistent, 0); err != nil {
			panic(err)
		}
		for i := 0; i < rounds; i++ {
			tx := ms.Begin()
			if _, err := tx.Enqueue("q", doc, nil, time.Now()); err != nil {
				panic(err)
			}
			if _, err := tx.Commit(); err != nil {
				panic(err)
			}
			if ms.PageStore().LiveLogBytes() > budget {
				if err := ms.PageStore().Checkpoint(); err != nil {
					panic(err)
				}
			}
		}
		// Fixed-size uncheckpointed tail so both runs crash mid-interval.
		if err := ms.PageStore().Checkpoint(); err != nil {
			panic(err)
		}
		for i := 0; i < 25; i++ {
			tx := ms.Begin()
			if _, err := tx.Enqueue("q", doc, nil, time.Now()); err != nil {
				panic(err)
			}
			if _, err := tx.Commit(); err != nil {
				panic(err)
			}
		}
		ms.PageStore().CrashForTest()
		ms2, err := msgstore.Open(dir, msgstore.DefaultOptions())
		if err != nil {
			panic(err)
		}
		defer ms2.Close()
		return ms2.PageStore().RecoveryReplayed()
	}

	fmt.Printf("\n%-10s %10s %14s %14s\n", "workload", "commits", "replayed recs", "recovery")
	for _, rounds := range []int{2000, 20000} {
		replayed, dur := part2(rounds)
		fmt.Printf("%-10s %10d %14d %14s\n",
			fmt.Sprintf("%dx", rounds/2000), rounds, replayed, dur.Round(time.Microsecond))
		record("E19", map[string]any{
			"part": "recovery-bound", "commits": rounds, "wal_budget_bytes": budget,
			"replayed_records": replayed, "recovery_us": float64(dur.Microseconds()),
		})
	}
}
