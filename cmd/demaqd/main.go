// Command demaqd runs a Demaq server: it loads a declarative application
// (QDL + QML statements) and executes it against a persistent data
// directory until interrupted.
//
//	demaqd -app application.dq -data ./data [-workers 4] [-http] [-gc 30s]
//	demaqd -app application.dq -check          # validate only
//
// Gateway queues resolve their endpoints from WSDL files relative to the
// application file's directory. With -http the HTTP transport is attached,
// so incoming gateway queues with http:// addresses accept messages POSTed
// by demaqctl or any HTTP client.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"demaq"
)

func main() {
	var (
		appFile    = flag.String("app", "", "application file (QDL+QML statements)")
		dataDir    = flag.String("data", "./demaq-data", "data directory")
		workers    = flag.Int("workers", 4, "message-processing workers")
		batchSize  = flag.Int("batch", 0, "messages claimed and committed per set-oriented batch (0 = tuned default, 1 = tuple-at-a-time)")
		check      = flag.Bool("check", false, "validate the application and exit")
		useHTTP    = flag.Bool("http", false, "attach the HTTP gateway transport")
		simSeed    = flag.Int64("sim", 0, "attach the simulated network transport with this seed")
		gcEvery    = flag.Duration("gc", 30*time.Second, "retention GC interval (0 disables)")
		noSync     = flag.Bool("nosync", false, "disable fsync on commit")
		statsSec   = flag.Duration("stats", 10*time.Second, "stats reporting interval (0 disables)")
		statusAddr = flag.String("status", "", "serve engine status as JSON on this address (e.g. :7070; demaqctl status reads it)")
		drain      = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain budget for in-flight work")
		maxBacklog = flag.Int("max-backlog", 0, "shed ingest with 429 when the backlog exceeds this (0 = unbounded)")
		walSoft    = flag.Int64("wal-soft", 0, "WAL soft budget in bytes: throttle commits and checkpoint past this much live log (0 = half of -wal-hard)")
		walHard    = flag.Int64("wal-hard", 0, "WAL hard budget in bytes: shed ingest with 429 when the live log reaches this (0 = unbudgeted)")
		ckptEvery  = flag.Duration("checkpoint", 30*time.Second, "fuzzy checkpoint interval, bounding crash-recovery replay (0 disables the time trigger)")
	)
	flag.Parse()
	if *appFile == "" {
		fmt.Fprintln(os.Stderr, "usage: demaqd -app application.dq [-data dir]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	source, err := os.ReadFile(*appFile)
	if err != nil {
		log.Fatalf("demaqd: %v", err)
	}
	if *check {
		if err := demaq.Validate(string(source)); err != nil {
			log.Fatalf("demaqd: %s: %v", *appFile, err)
		}
		fmt.Printf("%s: OK\n", *appFile)
		return
	}

	opts := &demaq.Options{
		Workers:            *workers,
		BatchSize:          *batchSize,
		GCInterval:         *gcEvery,
		NoSync:             *noSync,
		EnableHTTP:         *useHTTP,
		MaxIngestBacklog:   *maxBacklog,
		WALSoftBudget:      *walSoft,
		WALHardBudget:      *walHard,
		CheckpointInterval: *ckptEvery,
		Resources:          os.DirFS(filepath.Dir(*appFile)),
		Logger:             slog.New(slog.NewTextHandler(os.Stderr, nil)),
	}
	if *simSeed != 0 {
		opts.NetworkSeed = *simSeed
	}
	srv, err := demaq.Open(*dataDir, string(source), opts)
	if err != nil {
		log.Fatalf("demaqd: %v", err)
	}
	srv.Start()
	log.Printf("demaqd: serving %s from %s (queues: %v)", *appFile, *dataDir, srv.Queues())
	if *statusAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(srv.Stats())
		})
		go func() {
			if err := http.ListenAndServe(*statusAddr, mux); err != nil {
				log.Printf("demaqd: status server: %v", err)
			}
		}()
		log.Printf("demaqd: status on http://%s/status", *statusAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *statsSec > 0 {
		ticker := time.NewTicker(*statsSec)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				log.Printf("demaqd: %s", demaq.FormatStats(srv.Stats()))
			}
		}()
	}
	<-stop
	log.Printf("demaqd: shutting down (drain %s): %s", *drain, demaq.FormatStats(srv.Stats()))
	// A second signal during the drain forces immediate exit; leftover work
	// stays unprocessed in its persistent queues and resumes on restart.
	go func() {
		<-stop
		log.Fatalf("demaqd: second signal, exiting without drain")
	}()
	drained, err := srv.Shutdown(*drain)
	if err != nil {
		log.Fatalf("demaqd: shutdown: %v", err)
	}
	if !drained {
		log.Printf("demaqd: drain budget elapsed; leftover work resumes on restart")
	}
}
