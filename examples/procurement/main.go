// Procurement runs the paper's complete case study (CIDR 2007, Figs. 3-10):
// customer offer requests fork into three parallel checks (credit rating
// against open invoices, export restrictions, plant capacity); a slicing
// correlates the results and a join rule answers with an offer or a
// refusal; completed requests are reset so retention can reclaim their
// messages; an echo queue drives payment reminders.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"demaq"
)

func main() {
	dir, err := os.MkdirTemp("", "demaq-procurement")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srv, err := demaq.Open(dir, demaq.ProcurementApplication, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Master data consulted by the join rule (paper Fig. 7: pricelists via
	// fn:collection).
	if err := srv.AddMasterData("crm", `<pricelist><discount>3%</discount></pricelist>`); err != nil {
		log.Fatal(err)
	}
	// An unpaid invoice: customer 99 will fail the credit check (Fig. 6).
	srv.Start()
	srv.Enqueue("invoices", `<invoice><customerID>99</customerID><amount>1200</amount></invoice>`, nil)
	srv.Drain(5 * time.Second)

	requests := []struct {
		desc string
		xml  string
	}{
		{"clean order (accepted)", `
			<offerRequest>
			  <requestID>r1</requestID><customerID>77</customerID>
			  <items><item sku="PVC-12" restricted="no"><qty>40</qty></item></items>
			</offerRequest>`},
		{"restricted item (refused by legal)", `
			<offerRequest>
			  <requestID>r2</requestID><customerID>78</customerID>
			  <items><item sku="U-235" restricted="yes"><qty>1</qty></item></items>
			</offerRequest>`},
		{"unpaid invoices (refused by finance)", `
			<offerRequest>
			  <requestID>r3</requestID><customerID>99</customerID>
			  <items><item sku="PVC-12" restricted="no"><qty>5</qty></item></items>
			</offerRequest>`},
		{"capacity exceeded (refused by supplier)", `
			<offerRequest>
			  <requestID>r4</requestID><customerID>11</customerID>
			  <items><item sku="PVC-12" restricted="no"><qty>90000</qty></item></items>
			</offerRequest>`},
	}
	for _, r := range requests {
		if _, err := srv.Enqueue("crm", r.xml, nil); err != nil {
			log.Fatal(err)
		}
		srv.Drain(5 * time.Second)
		answers, _ := srv.Queue("customer")
		latest := answers[len(answers)-1]
		fmt.Printf("%-42s -> %s\n", r.desc, latest.XML)
	}

	// Payment reminder flow (Fig. 9): register a timeout at the echo queue;
	// no payment confirmation arrives, so finance sends a reminder.
	srv.Enqueue("invoices", `<invoice><requestID>inv-1</requestID><amount>250</amount></invoice>`, nil)
	srv.Enqueue("echoQueue",
		`<timeoutNotification><requestID>inv-1</requestID></timeoutNotification>`,
		map[string]string{"timeout": "100", "target": "finance"})
	time.Sleep(300 * time.Millisecond)
	srv.Drain(5 * time.Second)
	customer, _ := srv.Queue("customer")
	fmt.Printf("%-42s -> %s\n", "overdue invoice (echo queue reminder)", customer[len(customer)-1].XML)

	// Retention: completed requests were reset (Fig. 8); the garbage
	// collector reclaims every message no live slice still needs.
	n, err := srv.CollectGarbage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretention GC reclaimed %d messages after slice resets\n", n)
	fmt.Println("stats:", demaq.FormatStats(srv.Stats()))
}
