// Feedrouter is a content-based router for syndication items — the "Active
// Web" workload of the paper's introduction (RSS/Atom event notification).
// Incoming feed entries are routed to per-topic queues by declarative
// rules; a slicing groups every entry of the same feed source so that a
// digest rule can summarize a source once enough entries arrived, after
// which the source's slice is reset and retention reclaims the entries.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"demaq"
)

const app = `
create queue inbox    kind basic mode persistent;
create queue tech     kind basic mode persistent;
create queue finance  kind basic mode persistent;
create queue other    kind basic mode persistent;
create queue digests  kind basic mode persistent;

create property source as xs:string fixed
  queue inbox value //entry/source;
create slicing bySource on source;

(: content-based routing: category decides the target queue :)
create rule routeTech for inbox
  if (//entry[category = "tech"]) then
    do enqueue <item>{//title}{//source}</item> into tech;

create rule routeFinance for inbox
  if (//entry[category = "finance"]) then
    do enqueue <item>{//title}{//source}</item> into finance;

create rule routeOther for inbox
  if (//entry[not(category = "tech") and not(category = "finance")]) then
    do enqueue <item>{//title}{//source}</item> into other;

(: digest: once a source accumulated 3 entries, summarize and reset :)
create rule digest for bySource
  if (count(qs:slice()[/entry]) >= 3) then
    (do enqueue
       <digest source="{qs:slicekey()}">
         <count>{count(qs:slice()[/entry])}</count>
         {for $t in qs:slice()//title order by string($t) return $t}
       </digest> into digests,
     do reset);
`

func main() {
	dir, err := os.MkdirTemp("", "demaq-feedrouter")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := demaq.Open(dir, app, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Start()

	entries := []struct{ source, category, title string }{
		{"hn", "tech", "Go 1.30 released"},
		{"ft", "finance", "Markets rally"},
		{"hn", "tech", "New B-tree paper"},
		{"wire", "sports", "Cup final tonight"},
		{"hn", "tech", "XQuery revisited"},
		{"ft", "finance", "Rates decision"},
	}
	for _, e := range entries {
		xml := fmt.Sprintf(
			`<entry><source>%s</source><category>%s</category><title>%s</title></entry>`,
			e.source, e.category, e.title)
		if _, err := srv.Enqueue("inbox", xml, nil); err != nil {
			log.Fatal(err)
		}
	}
	if !srv.Drain(5 * time.Second) {
		log.Fatal("drain")
	}

	for _, q := range []string{"tech", "finance", "other", "digests"} {
		msgs, _ := srv.Queue(q)
		fmt.Printf("%s (%d):\n", q, len(msgs))
		for _, m := range msgs {
			fmt.Printf("  %s\n", m.XML)
		}
	}
	// Source "hn" reached 3 entries: digested and reset; its inbox entries
	// are now collectable.
	n, _ := srv.CollectGarbage()
	fmt.Printf("\nGC reclaimed %d messages (digested feed entries)\n", n)
}
