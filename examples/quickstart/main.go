// Quickstart: the smallest complete Demaq application — one rule that
// reacts to a ping message by producing a pong. Demonstrates opening a
// server, loading an application, enqueuing messages and inspecting
// queues through the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"demaq"
)

const app = `
create queue in  kind basic mode persistent;
create queue out kind basic mode persistent;

create rule respond for in
  if (//ping) then
    do enqueue <pong at="{current-dateTime()}">{//ping/text()}</pong> into out;
`

func main() {
	dir, err := os.MkdirTemp("", "demaq-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srv, err := demaq.Open(dir, app, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Start()

	for i := 1; i <= 3; i++ {
		if _, err := srv.Enqueue("in", fmt.Sprintf("<ping>hello %d</ping>", i), nil); err != nil {
			log.Fatal(err)
		}
	}
	if !srv.Drain(5 * time.Second) {
		log.Fatal("engine did not become idle")
	}

	msgs, err := srv.Queue("out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the out queue holds %d messages:\n", len(msgs))
	for _, m := range msgs {
		fmt.Printf("  #%d %s\n", m.ID, m.XML)
	}
	fmt.Println("stats:", demaq.FormatStats(srv.Stats()))
}
