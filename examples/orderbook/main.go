// Orderbook sketches the securities-trading workload the paper's
// introduction motivates (FIX-style XML messaging): buy and sell orders
// arrive in a high-priority queue, a slicing correlates orders per symbol,
// and a matching rule pairs the oldest crossing buy/sell orders into
// executions. Cancellations show per-symbol slice resets; an audit queue
// retains everything for compliance.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"demaq"
)

const app = `
create queue orders     kind basic mode persistent priority 10;
create queue executions kind basic mode persistent;
create queue audit      kind basic mode persistent priority 1;

create property symbol as xs:string fixed
  queue orders value //symbol;
create slicing bySymbol on symbol;

(: every order is mirrored to the audit trail :)
create rule auditTrail for orders
  if (//order) then
    do enqueue <audited>{//order/@side}{//symbol}{//price}</audited> into audit;

(: match: a buy and a sell for the same symbol with buy.price >= sell.price.
   The guard keeps the rule from re-firing on the execution itself. :)
create rule match for bySymbol
  if (qs:slice()[/order/@side = "buy"] and qs:slice()[/order/@side = "sell"]) then
    let $buys  := qs:slice()/order[@side = "buy"]
    let $sells := qs:slice()/order[@side = "sell"]
    let $buy   := $buys[number(price) = max($buys/price/number(.))][1]
    let $sell  := $sells[number(price) = min($sells/price/number(.))][1]
    return
      if (number($buy/price) >= number($sell/price)) then
        (do enqueue
           <execution symbol="{qs:slicekey()}">
             <price>{$sell/price/text()}</price>
             <buyer>{$buy/trader/text()}</buyer>
             <seller>{$sell/trader/text()}</seller>
           </execution> into executions,
         do reset)
      else ();
`

func main() {
	dir, err := os.MkdirTemp("", "demaq-orderbook")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := demaq.Open(dir, app, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Start()

	orders := []string{
		`<order side="buy"><symbol>ACME</symbol><price>101</price><trader>alice</trader></order>`,
		`<order side="buy"><symbol>GLOBEX</symbol><price>55</price><trader>carol</trader></order>`,
		`<order side="sell"><symbol>ACME</symbol><price>100</price><trader>bob</trader></order>`,
		`<order side="sell"><symbol>GLOBEX</symbol><price>60</price><trader>dan</trader></order>`, // no cross
	}
	for _, o := range orders {
		if _, err := srv.Enqueue("orders", o, nil); err != nil {
			log.Fatal(err)
		}
	}
	if !srv.Drain(5 * time.Second) {
		log.Fatal("drain")
	}

	execs, _ := srv.Queue("executions")
	fmt.Printf("executions (%d):\n", len(execs))
	for _, m := range execs {
		fmt.Printf("  %s\n", m.XML)
	}
	audit, _ := srv.Queue("audit")
	fmt.Printf("audit trail holds %d records\n", len(audit))
	fmt.Printf("GLOBEX book still open: %d resting orders in slice\n",
		len(srv.SliceMembers("bySymbol", "GLOBEX")))
	fmt.Println("stats:", demaq.FormatStats(srv.Stats()))
}
