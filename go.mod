module demaq

go 1.24
